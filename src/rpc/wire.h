// XDR-style wire encoding with exact byte accounting.
//
// The paper transports monitoring data with ZeroC ICE RPC and reports
// per-channel bandwidth (Table 4). We reproduce the marshalling path:
// every RPC payload in this codebase round-trips through this codec,
// and the byte counts the codec reports are what the Table 4 bench
// prints. Encoding follows XDR conventions: big-endian 4/8-byte
// scalars, strings length-prefixed and padded to 4 bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asdf::rpc {

class Encoder {
 public:
  void putU32(std::uint32_t v);
  void putI64(std::int64_t v);
  void putDouble(double v);
  void putString(const std::string& s);
  void putDoubleVector(const std::vector<double>& v);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Decoder {
 public:
  explicit Decoder(const std::vector<std::uint8_t>& bytes) : buf_(bytes) {}

  std::uint32_t getU32();
  std::int64_t getI64();
  double getDouble();
  std::string getString();
  std::vector<double> getDoubleVector();

  /// True when every byte has been consumed (framing check).
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void need(std::size_t n);
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace asdf::rpc
