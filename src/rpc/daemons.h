// The per-node collection daemons: sadc_rpcd and hadoop_log_rpcd.
//
// Exactly as in the paper (Section 4.3), each monitored slave runs two
// daemons that the ASDF control node polls over RPC: sadc_rpcd wraps
// libsadc and returns the current OS metric snapshot; hadoop_log_rpcd
// wraps the log-parser library and returns the per-second Hadoop state
// vectors derived from the TaskTracker and DataNode logs.
//
// Every fetch round-trips its payload through the wire codec (bytes
// recorded per channel for Table 4), charges the host node a sliver of
// CPU and network (the monitoring perturbation the paper measures in
// Table 3), and accumulates the real CPU time this process spent
// executing daemon code, which the Table 3 bench reports.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/cputime.h"
#include "common/types.h"
#include "hadoop/cluster.h"
#include "hadooplog/parser.h"
#include "metrics/os_model.h"
#include "rpc/collection_tap.h"
#include "rpc/transport.h"

namespace asdf::rpc {

class SadcDaemon {
 public:
  SadcDaemon(hadoop::Node& node, TransportRegistry& transports);

  /// One collection iteration: serialize the node's current snapshot,
  /// account the bytes, decode and return it.
  metrics::SadcSnapshot fetch();

  /// Flight-recorder tap (RpcHub::setObserver); may be null.
  void setTap(const CollectionTap* tap) { tap_ = tap; }

  double cpuSeconds() const { return cpu_.seconds(); }
  std::size_t memoryFootprintBytes() const;
  long calls() const { return calls_; }

 private:
  hadoop::Node& node_;
  RpcChannelStats& channel_;
  const CollectionTap* tap_ = nullptr;
  CpuMeter cpu_;
  long calls_ = 0;
};

class HadoopLogDaemon {
 public:
  /// `attachTime` anchors the parsers' clocks (zero vectors are
  /// reported for quiet seconds from that point on).
  HadoopLogDaemon(hadoop::Node& node, TransportRegistry& transports,
                  SimTime attachTime);

  /// Parses any new TaskTracker log lines and returns the finalized
  /// per-second TaskTracker state vectors.
  std::vector<hadooplog::StateSample> fetchTt(SimTime watermark);

  /// Same for the DataNode log.
  std::vector<hadooplog::StateSample> fetchDn(SimTime watermark);

  void setTap(const CollectionTap* tap) { tap_ = tap; }

  double cpuSeconds() const { return cpu_.seconds(); }
  std::size_t memoryFootprintBytes() const;
  long calls() const { return calls_; }

 private:
  std::vector<hadooplog::StateSample> roundTrip(
      RpcChannelStats& channel, CollectKind kind, SimTime watermark,
      const std::vector<hadooplog::StateSample>& samples);

  hadoop::Node& node_;
  RpcChannelStats& ttChannel_;
  RpcChannelStats& dnChannel_;
  const CollectionTap* tap_ = nullptr;
  hadooplog::TtLogParser ttParser_;
  hadooplog::DnLogParser dnParser_;
  std::size_t ttCursor_ = 0;
  std::size_t dnCursor_ = 0;
  CpuMeter cpu_;
  long calls_ = 0;
};

/// strace_rpcd (Section 5 extension): ships the node's per-second
/// syscall trace to the control node.
class StraceDaemon {
 public:
  StraceDaemon(hadoop::Node& node, TransportRegistry& transports);

  /// Returns the most recent tick's syscall trace.
  syscalls::TraceSecond fetch();

  void setTap(const CollectionTap* tap) { tap_ = tap; }

  double cpuSeconds() const { return cpu_.seconds(); }
  std::size_t memoryFootprintBytes() const;
  long calls() const { return calls_; }

 private:
  hadoop::Node& node_;
  RpcChannelStats& channel_;
  const CollectionTap* tap_ = nullptr;
  CpuMeter cpu_;
  long calls_ = 0;
};

/// One hub per monitored cluster: owns the per-node daemons, like the
/// boot-time daemon start-up the paper requires on all monitored nodes.
class RpcHub {
 public:
  RpcHub(hadoop::Cluster& cluster, SimTime attachTime);

  SadcDaemon& sadc(NodeId node);
  HadoopLogDaemon& hadoopLog(NodeId node);
  StraceDaemon& strace(NodeId node);
  TransportRegistry& transports() { return transports_; }

  /// Attaches a flight-recorder observer to every daemon. `clock`
  /// timestamps the samples (pass the engine's now()). Null observer
  /// detaches. Plain-sim archive recording taps here; fault-tolerant
  /// runs tap RpcClient instead so round outcomes are captured too.
  void setObserver(CollectionObserver* observer,
                   std::function<SimTime()> clock);

  /// Aggregate daemon CPU seconds (Table 3).
  double sadcCpuSeconds() const;
  double hadoopLogCpuSeconds() const;
  double straceCpuSeconds() const;
  std::size_t sadcMemoryBytes() const;
  std::size_t hadoopLogMemoryBytes() const;
  std::size_t straceMemoryBytes() const;

 private:
  TransportRegistry transports_;
  CollectionTap tap_;
  std::map<NodeId, std::unique_ptr<SadcDaemon>> sadcDaemons_;
  std::map<NodeId, std::unique_ptr<HadoopLogDaemon>> logDaemons_;
  std::map<NodeId, std::unique_ptr<StraceDaemon>> straceDaemons_;
};

}  // namespace asdf::rpc
