#include "rpc/summary.h"

namespace asdf::rpc {

void encodeSummaryWindow(Encoder& enc, const SummaryWindow& window) {
  enc.putDouble(window.time);
  enc.putDoubleVector(window.packed);
}

SummaryWindow decodeSummaryWindow(Decoder& dec) {
  SummaryWindow window;
  window.time = dec.getDouble();
  window.packed = dec.getDoubleVector();
  return window;
}

std::size_t summaryWindowWireBytes(std::size_t packedSize) {
  // time:f64 + vector count:u32 + packed doubles.
  return 8 + 4 + 8 * packedSize;
}

void SummaryBoard::append(SummaryChannel channel, double time,
                          const std::vector<double>& packed) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SummaryWindow>& windows =
      channels_[static_cast<std::uint32_t>(channel)];
  windows.push_back(SummaryWindow{time, packed});
}

std::size_t SummaryBoard::fetchSince(SummaryChannel channel, double since,
                                     std::vector<SummaryWindow>& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<SummaryWindow>& windows =
      channels_[static_cast<std::uint32_t>(channel)];
  out.clear();
  for (const SummaryWindow& w : windows) {
    if (w.time > since) out.push_back(w);
  }
  return out.size();
}

std::size_t SummaryBoard::windowCount(SummaryChannel channel) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return channels_[static_cast<std::uint32_t>(channel)].size();
}

}  // namespace asdf::rpc
