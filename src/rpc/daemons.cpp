#include "rpc/daemons.h"

#include "rpc/payloads.h"
#include "rpc/wire.h"

namespace asdf::rpc {
namespace {

// The node-side cost of answering one poll: a sliver of CPU and the
// response bytes on the NIC (this is the perturbation Table 3 bounds).
void chargeNode(hadoop::Node& node, double cpuSeconds, double txBytes) {
  node.addCpuSystem(cpuSeconds);
  node.addNetTx(txBytes);
  node.addNetRx(kCollectRequestBytes);
}

// Hands the encoded response to the flight recorder, timestamped by
// the tap's clock. Hub-path fetches are infallible single attempts.
void emitTap(const CollectionTap* tap, CollectKind kind, NodeId node,
             SimTime watermark, const Encoder& enc) {
  if (tap == nullptr || tap->observer == nullptr) return;
  CollectSample sample;
  sample.kind = kind;
  sample.node = node;
  sample.now = tap->clock ? tap->clock() : kNoTime;
  sample.watermark = watermark;
  sample.attempts = 1;
  sample.ok = true;
  sample.payload = enc.bytes().data();
  sample.payloadSize = enc.size();
  tap->observer->onSample(sample);
}

}  // namespace

SadcDaemon::SadcDaemon(hadoop::Node& node, TransportRegistry& transports)
    : node_(node), channel_(transports.channel("sadc-tcp")) {
  channel_.recordConnect();
}

metrics::SadcSnapshot SadcDaemon::fetch() {
  CpuMeter::Scope scope(cpu_);
  ++calls_;
  Encoder enc;
  encodeSnapshot(enc, node_.sadcCollect());
  channel_.recordCall(kCollectRequestBytes, enc.size());
  chargeNode(node_, 2.0e-5, static_cast<double>(enc.size()));
  emitTap(tap_, CollectKind::kSadc, node_.id(), kNoTime, enc);
  Decoder dec(enc.bytes());
  return decodeSnapshot(dec);
}

std::size_t SadcDaemon::memoryFootprintBytes() const {
  // libsadc keeps one snapshot-sized working buffer plus /proc read
  // scratch; the daemon itself holds the encoder buffer.
  return sizeof(SadcDaemon) +
         (metrics::kNodeMetricCount + metrics::kNicMetricCount +
          2 * metrics::kProcessMetricCount) *
             sizeof(double) +
         4096 /* /proc scratch */;
}

HadoopLogDaemon::HadoopLogDaemon(hadoop::Node& node,
                                 TransportRegistry& transports,
                                 SimTime attachTime)
    : node_(node),
      ttChannel_(transports.channel("hl-tt-tcp")),
      dnChannel_(transports.channel("hl-dn-tcp")) {
  ttChannel_.recordConnect();
  dnChannel_.recordConnect();
  ttParser_.startAt(static_cast<long>(attachTime));
  dnParser_.startAt(static_cast<long>(attachTime));
}

std::vector<hadooplog::StateSample> HadoopLogDaemon::roundTrip(
    RpcChannelStats& channel, CollectKind kind, SimTime watermark,
    const std::vector<hadooplog::StateSample>& samples) {
  Encoder enc;
  encodeSamples(enc, samples);
  channel.recordCall(kCollectRequestBytes, enc.size());
  chargeNode(node_, 1.0e-5, static_cast<double>(enc.size()));
  emitTap(tap_, kind, node_.id(), watermark, enc);
  Decoder dec(enc.bytes());
  return decodeSamples(dec);
}

std::vector<hadooplog::StateSample> HadoopLogDaemon::fetchTt(
    SimTime watermark) {
  CpuMeter::Scope scope(cpu_);
  ++calls_;
  ttParser_.consume(node_.ttLog().linesFrom(ttCursor_));
  ttCursor_ = node_.ttLog().lineCount();
  return roundTrip(ttChannel_, CollectKind::kTt, watermark,
                   ttParser_.poll(watermark));
}

std::vector<hadooplog::StateSample> HadoopLogDaemon::fetchDn(
    SimTime watermark) {
  CpuMeter::Scope scope(cpu_);
  ++calls_;
  dnParser_.consume(node_.dnLog().linesFrom(dnCursor_));
  dnCursor_ = node_.dnLog().lineCount();
  return roundTrip(dnChannel_, CollectKind::kDn, watermark,
                   dnParser_.poll(watermark));
}

std::size_t HadoopLogDaemon::memoryFootprintBytes() const {
  // The parser "maintains state that has constant memory use": the
  // open-task / open-transfer maps plus the per-second accumulators.
  return sizeof(HadoopLogDaemon) + ttParser_.openTaskCount() * 96 +
         dnParser_.openTransferCount() * 96 + 4096 /* line scratch */;
}

StraceDaemon::StraceDaemon(hadoop::Node& node,
                           TransportRegistry& transports)
    : node_(node), channel_(transports.channel("strace-tcp")) {
  channel_.recordConnect();
}

syscalls::TraceSecond StraceDaemon::fetch() {
  CpuMeter::Scope scope(cpu_);
  ++calls_;
  const syscalls::TraceSecond& trace = node_.lastSyscallTrace();
  // Wire format: one byte per event plus a length prefix.
  channel_.recordCall(kCollectRequestBytes, 4 + trace.size());
  chargeNode(node_, 1.0e-5, static_cast<double>(trace.size()) + 4.0);
  if (tap_ != nullptr && tap_->observer != nullptr) {
    // The sim path skips marshalling (accounting uses the 4 + size
    // convention); the recorder still needs real payload bytes.
    Encoder enc;
    encodeTrace(enc, trace);
    emitTap(tap_, CollectKind::kStrace, node_.id(), kNoTime, enc);
  }
  return trace;
}

std::size_t StraceDaemon::memoryFootprintBytes() const {
  // One second of trace buffer (one byte per event, sized for a busy
  // node) plus the ring the tracer writes into before it is drained.
  return sizeof(StraceDaemon) + 2 * node_.lastSyscallTrace().capacity() +
         4096 /* tracer ring scratch */;
}

RpcHub::RpcHub(hadoop::Cluster& cluster, SimTime attachTime) {
  for (hadoop::Node* node : cluster.slaveNodes()) {
    sadcDaemons_.emplace(node->id(),
                         std::make_unique<SadcDaemon>(*node, transports_));
    logDaemons_.emplace(node->id(), std::make_unique<HadoopLogDaemon>(
                                        *node, transports_, attachTime));
    straceDaemons_.emplace(node->id(),
                           std::make_unique<StraceDaemon>(*node,
                                                          transports_));
  }
}

void RpcHub::setObserver(CollectionObserver* observer,
                         std::function<SimTime()> clock) {
  tap_.observer = observer;
  tap_.clock = std::move(clock);
  const CollectionTap* tap = observer == nullptr ? nullptr : &tap_;
  for (auto& [id, d] : sadcDaemons_) d->setTap(tap);
  for (auto& [id, d] : logDaemons_) d->setTap(tap);
  for (auto& [id, d] : straceDaemons_) d->setTap(tap);
}

SadcDaemon& RpcHub::sadc(NodeId node) { return *sadcDaemons_.at(node); }

HadoopLogDaemon& RpcHub::hadoopLog(NodeId node) {
  return *logDaemons_.at(node);
}

StraceDaemon& RpcHub::strace(NodeId node) {
  return *straceDaemons_.at(node);
}

double RpcHub::sadcCpuSeconds() const {
  double total = 0.0;
  for (const auto& [id, d] : sadcDaemons_) total += d->cpuSeconds();
  return total;
}

double RpcHub::hadoopLogCpuSeconds() const {
  double total = 0.0;
  for (const auto& [id, d] : logDaemons_) total += d->cpuSeconds();
  return total;
}

double RpcHub::straceCpuSeconds() const {
  double total = 0.0;
  for (const auto& [id, d] : straceDaemons_) total += d->cpuSeconds();
  return total;
}

std::size_t RpcHub::sadcMemoryBytes() const {
  std::size_t total = 0;
  for (const auto& [id, d] : sadcDaemons_) total += d->memoryFootprintBytes();
  return total;
}

std::size_t RpcHub::hadoopLogMemoryBytes() const {
  std::size_t total = 0;
  for (const auto& [id, d] : logDaemons_) total += d->memoryFootprintBytes();
  return total;
}

std::size_t RpcHub::straceMemoryBytes() const {
  std::size_t total = 0;
  for (const auto& [id, d] : straceDaemons_) {
    total += d->memoryFootprintBytes();
  }
  return total;
}

}  // namespace asdf::rpc
