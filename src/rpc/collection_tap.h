// Collection-plane observation hook (the flight recorder's tap point).
//
// The archive subsystem (src/archive/) needs the exact payload bytes
// every transport serves, but it sits *above* rpc and net in the
// library layering (archive -> net -> rpc), so neither layer may name
// an archive type. Instead the collection plane exposes this small
// observer interface and three taps implement "record what was
// collected" without knowing who is listening:
//
//   * RpcHub daemons (plain sim runs)      — RpcHub::setObserver
//   * RpcClient fetch rounds (ft-sim/live) — RpcClient::setObserver
//   * RpcdServer responses (daemon side)   — RpcdOptions::observer
//
// A sample carries the rpc-encoded payload bytes — the same bytes the
// per-channel accounting charges — plus the round outcome (attempts,
// ok), which is what lets a replayed run reproduce retry/breaker
// behaviour and Table 3/4 numbers byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/types.h"

namespace asdf::rpc {

/// The four collection channels a sample can come from. Values are
/// stable on-disk identifiers (archive format v1) — append only.
enum class CollectKind : int { kSadc = 0, kTt = 1, kDn = 2, kStrace = 3 };
inline constexpr int kCollectKindCount = 4;

inline const char* collectKindName(CollectKind k) {
  switch (k) {
    case CollectKind::kSadc:
      return "sadc";
    case CollectKind::kTt:
      return "tt";
    case CollectKind::kDn:
      return "dn";
    case CollectKind::kStrace:
      return "strace";
  }
  return "unknown";
}

/// One observed collection round. `payload`/`payloadSize` point at the
/// rpc-encoded response bytes (empty when !ok) and are valid only for
/// the duration of the onSample() call — observers must copy.
struct CollectSample {
  CollectKind kind = CollectKind::kSadc;
  NodeId node = 0;
  SimTime now = kNoTime;        // module-schedule time of the fetch
  SimTime watermark = kNoTime;  // hadoop-log channels only
  int attempts = 1;             // 0 = fast-failed on an open breaker
  bool ok = true;
  const std::uint8_t* payload = nullptr;
  std::size_t payloadSize = 0;
};

/// Implemented by archive::ArchiveWriter. onSample() may be called
/// from pool threads (per-node exclusivity domains still serialize
/// samples of one node) — implementations must be thread-safe.
class CollectionObserver {
 public:
  virtual ~CollectionObserver() = default;
  virtual void onSample(const CollectSample& sample) = 0;
};

/// Observer plus the clock that timestamps hub-side samples (the hub
/// daemons don't otherwise know the engine time their fetch runs at).
struct CollectionTap {
  CollectionObserver* observer = nullptr;
  std::function<SimTime()> clock;
};

}  // namespace asdf::rpc
