#include "rpc/payloads.h"

namespace asdf::rpc {

void encodeSnapshot(Encoder& enc, const metrics::SadcSnapshot& snap) {
  enc.putDouble(snap.time);
  enc.putDoubleVector(snap.node);
  enc.putDoubleVector(snap.nic);
  enc.putU32(static_cast<std::uint32_t>(snap.processes.size()));
  for (const auto& [name, values] : snap.processes) {
    enc.putString(name);
    enc.putDoubleVector(values);
  }
}

metrics::SadcSnapshot decodeSnapshot(Decoder& dec) {
  metrics::SadcSnapshot snap;
  snap.time = dec.getDouble();
  snap.node = dec.getDoubleVector();
  snap.nic = dec.getDoubleVector();
  const std::uint32_t n = dec.getU32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = dec.getString();
    std::vector<double> values = dec.getDoubleVector();
    snap.processes.emplace_back(std::move(name), std::move(values));
  }
  return snap;
}

void encodeSamples(Encoder& enc,
                   const std::vector<hadooplog::StateSample>& samples) {
  enc.putU32(static_cast<std::uint32_t>(samples.size()));
  for (const auto& s : samples) {
    enc.putI64(s.second);
    enc.putDoubleVector(s.counts);
  }
}

std::vector<hadooplog::StateSample> decodeSamples(Decoder& dec) {
  std::vector<hadooplog::StateSample> out;
  const std::uint32_t n = dec.getU32();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    hadooplog::StateSample s;
    s.second = dec.getI64();
    s.counts = dec.getDoubleVector();
    out.push_back(std::move(s));
  }
  return out;
}

void encodeTrace(Encoder& enc, const syscalls::TraceSecond& trace) {
  // One byte per event plus a length prefix — the same "4 + size"
  // shape StraceDaemon has always accounted for.
  std::string raw(trace.begin(), trace.end());
  enc.putString(raw);
}

syscalls::TraceSecond decodeTrace(Decoder& dec) {
  const std::string raw = dec.getString();
  return syscalls::TraceSecond(raw.begin(), raw.end());
}

}  // namespace asdf::rpc
