// Payload codecs shared by every transport.
//
// The sim-path daemons (daemons.cpp) and the live socket plane
// (src/net/) must marshal the exact same bytes for the same data:
// Table 4's bandwidth numbers and the sim/live byte-parity contract
// (DESIGN.md §9) both depend on it. These helpers are the single
// definition of how a sadc snapshot and a Hadoop state-vector row look
// on the wire, layered on the XDR-style codec in wire.h.
#pragma once

#include <cstddef>
#include <vector>

#include "hadooplog/parser.h"
#include "metrics/os_model.h"
#include "rpc/wire.h"
#include "syscalls/trace_model.h"

namespace asdf::rpc {

/// Request payload of a parameterless collect call (object id +
/// operation name, ICE-style). Every transport — simulated or live —
/// charges this many request bytes per attempt so the accounting is
/// identical across them.
inline constexpr std::size_t kCollectRequestBytes = 48;

void encodeSnapshot(Encoder& enc, const metrics::SadcSnapshot& snap);
metrics::SadcSnapshot decodeSnapshot(Decoder& dec);

void encodeSamples(Encoder& enc,
                   const std::vector<hadooplog::StateSample>& samples);
std::vector<hadooplog::StateSample> decodeSamples(Decoder& dec);

void encodeTrace(Encoder& enc, const syscalls::TraceSecond& trace);
syscalls::TraceSecond decodeTrace(Decoder& dec);

}  // namespace asdf::rpc
