#include "rpc/wire.h"

#include <cstring>
#include <stdexcept>

#include "common/bytes.h"
#include "common/error.h"

namespace asdf::rpc {

void Encoder::putU32(std::uint32_t v) { bytes::putU32(buf_, v); }

void Encoder::putI64(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  putU32(static_cast<std::uint32_t>(u >> 32));
  putU32(static_cast<std::uint32_t>(u & 0xFFFFFFFFULL));
}

void Encoder::putDouble(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putI64(static_cast<std::int64_t>(bits));
}

void Encoder::putString(const std::string& s) {
  putU32(static_cast<std::uint32_t>(s.size()));
  for (char c : s) buf_.push_back(static_cast<std::uint8_t>(c));
  while (buf_.size() % 4 != 0) buf_.push_back(0);  // XDR padding
}

void Encoder::putDoubleVector(const std::vector<double>& v) {
  putU32(static_cast<std::uint32_t>(v.size()));
  for (double d : v) putDouble(d);
}

void Decoder::need(std::size_t n) {
  if (pos_ + n > buf_.size()) {
    throw RpcError("wire decode: truncated message");
  }
}

std::uint32_t Decoder::getU32() {
  need(4);
  const std::uint32_t v = bytes::readU32(buf_.data() + pos_);
  pos_ += 4;
  return v;
}

std::int64_t Decoder::getI64() {
  const std::uint64_t hi = getU32();
  const std::uint64_t lo = getU32();
  return static_cast<std::int64_t>((hi << 32) | lo);
}

double Decoder::getDouble() {
  const auto bits = static_cast<std::uint64_t>(getI64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Decoder::getString() {
  const std::uint32_t len = getU32();
  need(len);
  std::string s(reinterpret_cast<const char*>(buf_.data()) +
                    static_cast<long>(pos_),
                len);
  pos_ += len;
  while (pos_ % 4 != 0) {
    need(1);
    ++pos_;
  }
  return s;
}

std::vector<double> Decoder::getDoubleVector() {
  const std::uint32_t n = getU32();
  std::vector<double> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(getDouble());
  return v;
}

}  // namespace asdf::rpc
