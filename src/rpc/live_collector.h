// Abstract socket backend for RpcClient's live mode.
//
// The rpc layer cannot depend on src/net/ (net already depends on rpc
// for the wire codec), so the live transport is injected through this
// interface: net::LiveTransport implements it over real framed TCP to
// an asdf_rpcd daemon. Each call is one *attempt* — it either returns
// the decoded value within the transport's timeout or reports failure;
// retries, backoff, circuit breaking, health bookkeeping and byte
// accounting all stay in RpcClient, identical to the simulated path.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "hadooplog/parser.h"
#include "metrics/os_model.h"
#include "syscalls/trace_model.h"

namespace asdf::rpc {

class LiveCollector {
 public:
  virtual ~LiveCollector() = default;

  /// Slave count the connected daemon serves (from the handshake).
  virtual int slaves() const = 0;

  /// One attempt each. On success fills `out` and sets `responseBytes`
  /// to the response payload size as marshalled on the wire — the same
  /// quantity the simulated daemons feed to RpcChannelStats, so Table 4
  /// totals agree between transports.
  virtual bool fetchSadc(NodeId node, SimTime now,
                         metrics::SadcSnapshot& out,
                         std::size_t& responseBytes) = 0;
  virtual bool fetchTt(NodeId node, SimTime now, SimTime watermark,
                       std::vector<hadooplog::StateSample>& out,
                       std::size_t& responseBytes) = 0;
  virtual bool fetchDn(NodeId node, SimTime now, SimTime watermark,
                       std::vector<hadooplog::StateSample>& out,
                       std::size_t& responseBytes) = 0;
  virtual bool fetchStrace(NodeId node, SimTime now,
                           syscalls::TraceSecond& out,
                           std::size_t& responseBytes) = 0;
};

}  // namespace asdf::rpc
