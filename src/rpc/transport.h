// Channel-level transport accounting.
//
// Table 4 of the paper reports, per RPC type (sadc-tcp, hl-dn-tcp,
// hl-tt-tcp), the static per-node connection overhead and the
// per-iteration bandwidth. RpcChannelStats accumulates exactly those
// quantities: connection setup bytes once per node, then request +
// response payload (plus per-message framing) per call.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace asdf::rpc {

/// Wire costs shared by all channels; modeled on a TCP connection
/// carrying ICE-style RPC: 3-way handshake + protocol negotiation at
/// connect, and per-message TCP/IP + RPC header overhead.
struct TransportCosts {
  double connectBytes = 2028.0;  // handshake + validation + proxy setup
  double perMessageOverheadBytes = 78.0;  // TCP/IP + RPC header
};

/// Thread-safe: one channel is shared by every node's daemon of that
/// RPC type, and fpt-core's parallel executors may poll several nodes
/// concurrently. Counter updates are serialized internally.
class RpcChannelStats {
 public:
  RpcChannelStats(std::string name, TransportCosts costs);
  RpcChannelStats(const RpcChannelStats&) = delete;
  RpcChannelStats& operator=(const RpcChannelStats&) = delete;

  /// Records a connection establishment (once per monitored node).
  void recordConnect();

  /// Records one call: request payload out, response payload back.
  void recordCall(std::size_t requestPayload, std::size_t responsePayload);

  /// Records a failed attempt: the request (plus framing) went out but
  /// no response came back — timeouts still cost request bandwidth.
  void recordFailedCall(std::size_t requestPayload);

  /// Topology tier the channel belongs to: 1 = leaf collection
  /// (daemon -> analysis/aggregator), 2 = summary (aggregator -> root).
  /// Table 4 bandwidth is reported per tier in tiered runs. Idempotent
  /// and thread-safe like the counters.
  void setTier(int tier);
  int tier() const;

  const std::string& name() const { return name_; }
  long connects() const;
  long calls() const;
  long failedCalls() const;
  double staticOverheadBytes() const;   // total connect bytes
  double totalCallBytes() const;        // all request+response traffic
  double bytesPerCall() const;

 private:
  std::string name_;
  TransportCosts costs_;
  mutable std::mutex mutex_;
  int tier_ = 1;
  long connects_ = 0;
  long calls_ = 0;
  long failedCalls_ = 0;
  double payloadBytes_ = 0.0;
};

/// Registry of channels, keyed by RPC type name.
class TransportRegistry {
 public:
  explicit TransportRegistry(TransportCosts costs = TransportCosts{})
      : costs_(costs) {}

  RpcChannelStats& channel(const std::string& name);
  std::vector<const RpcChannelStats*> channels() const;

 private:
  TransportCosts costs_;
  std::map<std::string, RpcChannelStats> channels_;
};

}  // namespace asdf::rpc
