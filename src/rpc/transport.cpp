#include "rpc/transport.h"

#include <utility>

namespace asdf::rpc {

RpcChannelStats::RpcChannelStats(std::string name, TransportCosts costs)
    : name_(std::move(name)), costs_(costs) {}

void RpcChannelStats::recordConnect() { ++connects_; }

void RpcChannelStats::recordCall(std::size_t requestPayload,
                                 std::size_t responsePayload) {
  ++calls_;
  payloadBytes_ += static_cast<double>(requestPayload) +
                   static_cast<double>(responsePayload) +
                   2.0 * costs_.perMessageOverheadBytes;
}

double RpcChannelStats::staticOverheadBytes() const {
  return static_cast<double>(connects_) * costs_.connectBytes;
}

double RpcChannelStats::totalCallBytes() const { return payloadBytes_; }

double RpcChannelStats::bytesPerCall() const {
  return calls_ == 0 ? 0.0 : payloadBytes_ / static_cast<double>(calls_);
}

RpcChannelStats& TransportRegistry::channel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_.emplace(name, RpcChannelStats(name, costs_)).first;
  }
  return it->second;
}

std::vector<const RpcChannelStats*> TransportRegistry::channels() const {
  std::vector<const RpcChannelStats*> out;
  out.reserve(channels_.size());
  for (const auto& [name, ch] : channels_) out.push_back(&ch);
  return out;
}

}  // namespace asdf::rpc
