#include "rpc/transport.h"

#include <utility>

namespace asdf::rpc {

RpcChannelStats::RpcChannelStats(std::string name, TransportCosts costs)
    : name_(std::move(name)), costs_(costs) {}

void RpcChannelStats::recordConnect() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++connects_;
}

void RpcChannelStats::recordCall(std::size_t requestPayload,
                                 std::size_t responsePayload) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++calls_;
  payloadBytes_ += static_cast<double>(requestPayload) +
                   static_cast<double>(responsePayload) +
                   2.0 * costs_.perMessageOverheadBytes;
}

void RpcChannelStats::recordFailedCall(std::size_t requestPayload) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++failedCalls_;
  payloadBytes_ += static_cast<double>(requestPayload) +
                   costs_.perMessageOverheadBytes;
}

void RpcChannelStats::setTier(int tier) {
  std::lock_guard<std::mutex> lock(mutex_);
  tier_ = tier;
}

int RpcChannelStats::tier() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tier_;
}

long RpcChannelStats::connects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connects_;
}

long RpcChannelStats::calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calls_;
}

long RpcChannelStats::failedCalls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failedCalls_;
}

double RpcChannelStats::staticOverheadBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<double>(connects_) * costs_.connectBytes;
}

double RpcChannelStats::totalCallBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return payloadBytes_;
}

double RpcChannelStats::bytesPerCall() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calls_ == 0 ? 0.0 : payloadBytes_ / static_cast<double>(calls_);
}

RpcChannelStats& TransportRegistry::channel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_.try_emplace(name, name, costs_).first;
  }
  return it->second;
}

std::vector<const RpcChannelStats*> TransportRegistry::channels() const {
  std::vector<const RpcChannelStats*> out;
  out.reserve(channels_.size());
  for (const auto& [name, ch] : channels_) out.push_back(&ch);
  return out;
}

}  // namespace asdf::rpc
