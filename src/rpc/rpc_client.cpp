#include "rpc/rpc_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "rpc/payloads.h"

namespace asdf::rpc {
namespace {

// Per-node attempt logs are bounded so week-long runs cannot grow them
// without limit; the determinism tests only need the early schedule.
constexpr std::size_t kMaxLoggedAttempts = 65536;

std::uint64_t mixSeed(std::uint64_t seed, NodeId node) {
  return seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(node + 1);
}

}  // namespace

const char* daemonName(Daemon d) {
  switch (d) {
    case Daemon::kSadc:
      return "sadc_rpcd";
    case Daemon::kHadoopLog:
      return "hadoop_log_rpcd";
    case Daemon::kStrace:
      return "strace_rpcd";
  }
  return "unknown";
}

const char* healthName(NodeHealth h) {
  switch (h) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kDegraded:
      return "degraded";
    case NodeHealth::kUnmonitorable:
      return "unmonitorable";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// MonitoringFaultBoard

void MonitoringFaultBoard::setCrashed(NodeId node, Daemon d, bool crashed) {
  nodes_[node].crashed[static_cast<int>(d)] = crashed;
}

void MonitoringFaultBoard::setHung(NodeId node, Daemon d, bool hung) {
  nodes_[node].hung[static_cast<int>(d)] = hung;
}

void MonitoringFaultBoard::setSlowFactor(NodeId node, Daemon d,
                                         double factor) {
  nodes_[node].slow[static_cast<int>(d)] = factor;
}

void MonitoringFaultBoard::setPartitioned(NodeId node, bool partitioned) {
  nodes_[node].partitioned = partitioned;
}

const MonitoringFaultBoard::NodeFaultState* MonitoringFaultBoard::find(
    NodeId node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

bool MonitoringFaultBoard::crashed(NodeId node, Daemon d) const {
  const NodeFaultState* s = find(node);
  return s != nullptr && s->crashed[static_cast<int>(d)];
}

bool MonitoringFaultBoard::hung(NodeId node, Daemon d) const {
  const NodeFaultState* s = find(node);
  return s != nullptr && s->hung[static_cast<int>(d)];
}

double MonitoringFaultBoard::slowFactor(NodeId node, Daemon d) const {
  const NodeFaultState* s = find(node);
  return s == nullptr ? 1.0 : s->slow[static_cast<int>(d)];
}

bool MonitoringFaultBoard::partitioned(NodeId node) const {
  const NodeFaultState* s = find(node);
  return s != nullptr && s->partitioned;
}

// ---------------------------------------------------------------------------
// CircuitBreaker

CircuitBreaker::State CircuitBreaker::state(SimTime now) const {
  if (!open_) return State::kClosed;
  return now >= probeAt_ ? State::kHalfOpen : State::kOpen;
}

bool CircuitBreaker::allowRound(SimTime now) const {
  return state(now) != State::kOpen;
}

void CircuitBreaker::onRoundSuccess(SimTime) {
  consecutiveFailures_ = 0;
  open_ = false;
  probeAt_ = kNoTime;
}

void CircuitBreaker::onRoundFailure(SimTime now) {
  ++consecutiveFailures_;
  if (open_) {
    // A failed HALF_OPEN probe: back to OPEN for a fresh interval.
    probeAt_ = now + recovery_;
    return;
  }
  if (consecutiveFailures_ >= threshold_) {
    open_ = true;
    probeAt_ = now + recovery_;
    ++opens_;
  }
}

// ---------------------------------------------------------------------------
// NodeHealthRegistry

void NodeHealthRegistry::registerNode(NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.try_emplace(node);
}

void NodeHealthRegistry::markSuccess(NodeId node, Daemon d, SimTime now,
                                     bool degraded) {
  std::lock_guard<std::mutex> lock(mutex_);
  ChannelEntry& e = entries_[node][static_cast<int>(d)];
  e.health = degraded ? NodeHealth::kDegraded : NodeHealth::kHealthy;
  e.lastSuccess = now;
  ++e.successes;
}

void NodeHealthRegistry::markFailure(NodeId node, Daemon d, SimTime now) {
  std::lock_guard<std::mutex> lock(mutex_);
  ChannelEntry& e = entries_[node][static_cast<int>(d)];
  e.health = NodeHealth::kUnmonitorable;
  (void)now;
  ++e.failures;
}

NodeHealth NodeHealthRegistry::channelHealth(NodeId node, Daemon d) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(node);
  if (it == entries_.end()) return NodeHealth::kHealthy;
  return it->second[static_cast<int>(d)].health;
}

NodeHealth NodeHealthRegistry::aggregate(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(node);
  if (it == entries_.end()) return NodeHealth::kHealthy;
  NodeHealth worst = NodeHealth::kHealthy;
  for (int d = 0; d < kDaemonCount; ++d) {
    const ChannelEntry& e = it->second[d];
    // Channels that have never been polled (e.g. strace without an
    // strace module) carry no signal.
    if (e.successes == 0 && e.failures == 0) continue;
    worst = std::max(worst, e.health,
                     [](NodeHealth a, NodeHealth b) {
                       return static_cast<int>(a) < static_cast<int>(b);
                     });
  }
  return worst;
}

double NodeHealthRegistry::staleness(NodeId node, Daemon d,
                                     SimTime now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(node);
  if (it == entries_.end()) return 0.0;
  const ChannelEntry& e = it->second[static_cast<int>(d)];
  if (e.lastSuccess == kNoTime) {
    return e.failures > 0 ? now : 0.0;
  }
  return std::max(0.0, now - e.lastSuccess);
}

std::vector<NodeId> NodeHealthRegistry::nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<NodeId> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) out.push_back(id);
  return out;
}

// ---------------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(hadoop::Cluster& cluster, RpcHub& hub, RpcPolicy policy,
                     std::uint64_t seed)
    : cluster_(&cluster), hub_(&hub), policy_(policy) {
  for (hadoop::Node* node : cluster.slaveNodes()) {
    states_.emplace(node->id(),
                    NodeState(mixSeed(seed, node->id()), policy_));
    registry_.registerNode(node->id());
  }
}

RpcClient::RpcClient(LiveCollector& live, RpcPolicy policy,
                     std::uint64_t seed, bool realBackoff)
    : live_(&live), realBackoff_(realBackoff), policy_(policy) {
  for (NodeId node = 1; node <= live.slaves(); ++node) {
    states_.emplace(node, NodeState(mixSeed(seed, node), policy_));
    registry_.registerNode(node);
    // One logical connection per node per channel, mirroring RpcHub's
    // per-daemon connects so static-overhead accounting matches.
    liveTransports_.channel("sadc-tcp").recordConnect();
    liveTransports_.channel("hl-tt-tcp").recordConnect();
    liveTransports_.channel("hl-dn-tcp").recordConnect();
    liveTransports_.channel("strace-tcp").recordConnect();
  }
}

RpcClient::NodeState& RpcClient::state(NodeId node) {
  return states_.at(node);
}

const RpcClient::NodeState& RpcClient::state(NodeId node) const {
  return states_.at(node);
}

bool RpcClient::attemptSucceeds(NodeState& st, NodeId node, Daemon d,
                                double& costSeconds) {
  if (board_.partitioned(node) || board_.crashed(node, d)) {
    // Connection refused / unreachable: fails within one RTT.
    costSeconds = policy_.baseLatencySeconds;
    return false;
  }
  if (board_.hung(node, d)) {
    costSeconds = policy_.timeoutSeconds;
    return false;
  }
  const double latency =
      policy_.baseLatencySeconds * board_.slowFactor(node, d);
  if (latency > policy_.timeoutSeconds) {
    costSeconds = policy_.timeoutSeconds;
    return false;
  }
  const double loss = cluster_->node(node).nic().lossRate();
  if (loss > 0.0 &&
      st.rng.bernoulli(std::pow(loss, policy_.lossFailureExponent))) {
    // Enough retransmissions were lost that the attempt blew its
    // timeout — the PacketLoss fault degrades the monitoring plane too.
    costSeconds = policy_.timeoutSeconds;
    return false;
  }
  costSeconds = latency;
  return true;
}

RpcClient::RoundOutcome RpcClient::round(NodeId node, Daemon d,
                                         const std::string& channelName,
                                         SimTime now) {
  NodeState& st = state(node);
  ++st.rounds;
  RoundOutcome out;

  if (!st.breaker.allowRound(now)) {
    ++st.fastFails;
    ++st.failedRounds;
    registry_.markFailure(node, d, now);
    return out;  // attempts == 0: never touched the wire
  }
  // A HALF_OPEN breaker sends exactly one probe; retrying a probe would
  // defeat the point of easing back in.
  const bool probing = st.breaker.state(now) == CircuitBreaker::State::kHalfOpen;
  const int maxAttempts = probing ? 1 : 1 + policy_.maxRetries;

  RpcChannelStats& channel = hub_->transports().channel(channelName);
  SimTime t = now;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    double cost = 0.0;
    const bool ok = attemptSucceeds(st, node, d, cost);
    if (st.log.size() < kMaxLoggedAttempts) {
      st.log.push_back(AttemptRecord{t, d, attempt, ok});
    }
    out.attempts = attempt + 1;
    if (ok) {
      out.ok = true;
      out.retried = attempt > 0;
      st.retries += attempt;
      st.breaker.onRoundSuccess(now);
      registry_.markSuccess(node, d, now, out.retried);
      return out;
    }
    channel.recordFailedCall(kCollectRequestBytes);
    t += cost;
    if (attempt + 1 < maxAttempts) {
      const double backoff = std::min(
          policy_.backoffMax, policy_.backoffBase * std::pow(2.0, attempt));
      const double jitter =
          1.0 + policy_.jitterFrac * (2.0 * st.rng.uniform() - 1.0);
      t += backoff * jitter;
    }
  }
  st.retries += maxAttempts - 1;
  ++st.failedRounds;
  st.breaker.onRoundFailure(now);
  registry_.markFailure(node, d, now);
  return out;
}

RpcClient::RoundOutcome RpcClient::liveRound(
    NodeId node, Daemon d, const std::string& channelName, SimTime now,
    const std::function<bool(std::size_t&)>& attempt) {
  NodeState& st = state(node);
  ++st.rounds;
  RoundOutcome out;

  if (!st.breaker.allowRound(now)) {
    ++st.fastFails;
    ++st.failedRounds;
    registry_.markFailure(node, d, now);
    return out;  // attempts == 0: never touched the wire
  }
  const bool probing =
      st.breaker.state(now) == CircuitBreaker::State::kHalfOpen;
  const int maxAttempts = probing ? 1 : 1 + policy_.maxRetries;

  RpcChannelStats& channel = liveTransports_.channel(channelName);
  for (int i = 0; i < maxAttempts; ++i) {
    std::size_t responseBytes = 0;
    const bool ok = attempt(responseBytes);
    if (st.log.size() < kMaxLoggedAttempts) {
      st.log.push_back(AttemptRecord{now, d, i, ok});
    }
    out.attempts = i + 1;
    if (ok) {
      out.ok = true;
      out.retried = i > 0;
      st.retries += i;
      st.breaker.onRoundSuccess(now);
      registry_.markSuccess(node, d, now, out.retried);
      channel.recordCall(kCollectRequestBytes, responseBytes);
      return out;
    }
    // A failed attempt still put the request (+ framing overhead) on
    // the wire — charge it exactly like the simulated path.
    channel.recordFailedCall(kCollectRequestBytes);
    if (realBackoff_ && i + 1 < maxAttempts) {
      const double backoff = std::min(
          policy_.backoffMax, policy_.backoffBase * std::pow(2.0, i));
      const double jitter =
          1.0 + policy_.jitterFrac * (2.0 * st.rng.uniform() - 1.0);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff * jitter));
    }
  }
  st.retries += maxAttempts - 1;
  ++st.failedRounds;
  st.breaker.onRoundFailure(now);
  registry_.markFailure(node, d, now);
  return out;
}

void RpcClient::emitSample(CollectKind kind, NodeId node, SimTime now,
                           SimTime watermark, const RoundOutcome& r,
                           const std::function<void(Encoder&)>& encode) {
  if (observer_ == nullptr) return;
  Encoder enc;
  if (r.ok) encode(enc);
  CollectSample sample;
  sample.kind = kind;
  sample.node = node;
  sample.now = now;
  sample.watermark = watermark;
  sample.attempts = r.attempts;
  sample.ok = r.ok;
  sample.payload = enc.bytes().data();
  sample.payloadSize = enc.size();
  observer_->onSample(sample);
}

Fetched<metrics::SadcSnapshot> RpcClient::fetchSadc(NodeId node,
                                                    SimTime now) {
  Fetched<metrics::SadcSnapshot> out;
  RoundOutcome r;
  if (live_ != nullptr) {
    r = liveRound(node, Daemon::kSadc, "sadc-tcp", now,
                  [&](std::size_t& bytes) {
                    return live_->fetchSadc(node, now, out.value, bytes);
                  });
  } else {
    r = round(node, Daemon::kSadc, "sadc-tcp", now);
    if (r.ok) out.value = hub_->sadc(node).fetch();
  }
  emitSample(CollectKind::kSadc, node, now, kNoTime, r,
             [&](Encoder& enc) { encodeSnapshot(enc, out.value); });
  out.ok = r.ok;
  out.retried = r.retried;
  out.attempts = r.attempts;
  return out;
}

Fetched<std::vector<hadooplog::StateSample>> RpcClient::fetchTt(
    NodeId node, SimTime now, SimTime watermark) {
  Fetched<std::vector<hadooplog::StateSample>> out;
  RoundOutcome r;
  if (live_ != nullptr) {
    r = liveRound(node, Daemon::kHadoopLog, "hl-tt-tcp", now,
                  [&](std::size_t& bytes) {
                    return live_->fetchTt(node, now, watermark, out.value,
                                          bytes);
                  });
  } else {
    r = round(node, Daemon::kHadoopLog, "hl-tt-tcp", now);
    if (r.ok) out.value = hub_->hadoopLog(node).fetchTt(watermark);
  }
  emitSample(CollectKind::kTt, node, now, watermark, r,
             [&](Encoder& enc) { encodeSamples(enc, out.value); });
  out.ok = r.ok;
  out.retried = r.retried;
  out.attempts = r.attempts;
  return out;
}

Fetched<std::vector<hadooplog::StateSample>> RpcClient::fetchDn(
    NodeId node, SimTime now, SimTime watermark) {
  Fetched<std::vector<hadooplog::StateSample>> out;
  RoundOutcome r;
  if (live_ != nullptr) {
    r = liveRound(node, Daemon::kHadoopLog, "hl-dn-tcp", now,
                  [&](std::size_t& bytes) {
                    return live_->fetchDn(node, now, watermark, out.value,
                                          bytes);
                  });
  } else {
    r = round(node, Daemon::kHadoopLog, "hl-dn-tcp", now);
    if (r.ok) out.value = hub_->hadoopLog(node).fetchDn(watermark);
  }
  emitSample(CollectKind::kDn, node, now, watermark, r,
             [&](Encoder& enc) { encodeSamples(enc, out.value); });
  out.ok = r.ok;
  out.retried = r.retried;
  out.attempts = r.attempts;
  return out;
}

Fetched<syscalls::TraceSecond> RpcClient::fetchStrace(NodeId node,
                                                      SimTime now) {
  Fetched<syscalls::TraceSecond> out;
  RoundOutcome r;
  if (live_ != nullptr) {
    r = liveRound(node, Daemon::kStrace, "strace-tcp", now,
                  [&](std::size_t& bytes) {
                    if (!live_->fetchStrace(node, now, out.value, bytes)) {
                      return false;
                    }
                    // Account the sim convention — length prefix plus
                    // one byte per event — not the padded frame payload.
                    bytes = 4 + out.value.size();
                    return true;
                  });
  } else {
    r = round(node, Daemon::kStrace, "strace-tcp", now);
    if (r.ok) out.value = hub_->strace(node).fetch();
  }
  emitSample(CollectKind::kStrace, node, now, kNoTime, r,
             [&](Encoder& enc) { encodeTrace(enc, out.value); });
  out.ok = r.ok;
  out.retried = r.retried;
  out.attempts = r.attempts;
  return out;
}

CircuitBreaker::State RpcClient::breakerState(NodeId node,
                                              SimTime now) const {
  return state(node).breaker.state(now);
}

const std::vector<AttemptRecord>& RpcClient::attemptLog(NodeId node) const {
  return state(node).log;
}

long RpcClient::totalRounds() const {
  long total = 0;
  for (const auto& [id, st] : states_) total += st.rounds;
  return total;
}

long RpcClient::totalRetries() const {
  long total = 0;
  for (const auto& [id, st] : states_) total += st.retries;
  return total;
}

long RpcClient::totalFailedRounds() const {
  long total = 0;
  for (const auto& [id, st] : states_) total += st.failedRounds;
  return total;
}

long RpcClient::totalFastFails() const {
  long total = 0;
  for (const auto& [id, st] : states_) total += st.fastFails;
  return total;
}

long RpcClient::totalBreakerOpens() const {
  long total = 0;
  for (const auto& [id, st] : states_) total += st.breaker.opens();
  return total;
}

NodeId nodeIdFromOrigin(const std::string& origin) {
  constexpr const char kPrefix[] = "slave";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (origin.size() <= kPrefixLen ||
      origin.compare(0, kPrefixLen, kPrefix) != 0) {
    return kInvalidNode;
  }
  NodeId id = 0;
  for (std::size_t i = kPrefixLen; i < origin.size(); ++i) {
    const char c = origin[i];
    if (c < '0' || c > '9') return kInvalidNode;
    id = id * 10 + (c - '0');
  }
  return id >= 1 ? id : kInvalidNode;
}

}  // namespace asdf::rpc
