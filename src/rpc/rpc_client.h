// Fault-tolerant RPC collection layer.
//
// The paper's collection plane is implicitly infallible: fpt-core polls
// sadc_rpcd / hadoop_log_rpcd and the fetch always returns. A real
// deployment must survive failures of the thing it monitors — a crashed
// daemon, a hung daemon, a partitioned node — without stalling or
// poisoning the analysis pipeline. RpcClient wraps the per-node daemon
// fetches with:
//
//   * a per-channel timeout (virtual, driven off the sim clock),
//   * bounded retries with exponential backoff and seeded jitter, and
//   * a per-node circuit breaker: CLOSED -> OPEN after N consecutive
//     failed rounds -> HALF_OPEN probe after a recovery interval.
//
// All failure decisions are deterministic for a given seed: each node
// owns its own Rng stream, and every collector for a node runs inside
// that node's fpt-core exclusivity domain, so the draw sequence is
// independent of the executor (serial or thread pool).
//
// Failures come from two sources: the MonitoringFaultBoard (flipped by
// faults::MonitoringFaultInjector on an engine schedule — crash, hang,
// slowdown, partition), and the node's NIC packet-loss rate (the Table 2
// PacketLoss fault also degrades the monitoring RPCs: an attempt times
// out with probability lossRate^2, i.e. two consecutive retransmission
// losses blow the timeout).
//
// Every fetch outcome lands in the NodeHealthRegistry, which the
// analysis modules consult to compute peer medians over *surviving*
// nodes only and to distinguish "node faulty" from "node unmonitorable".
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hadoop/cluster.h"
#include "rpc/daemons.h"
#include "rpc/live_collector.h"
#include "rpc/wire.h"

namespace asdf::rpc {

/// The three per-node collection daemons a channel can target.
enum class Daemon : int { kSadc = 0, kHadoopLog = 1, kStrace = 2 };
inline constexpr int kDaemonCount = 3;
const char* daemonName(Daemon d);

/// Monitoring-plane health of a node (or of one of its channels):
///   kHealthy       — last fetch succeeded on the first attempt;
///   kDegraded      — last fetch succeeded but needed retries;
///   kUnmonitorable — last fetch round failed (or the breaker is open):
///                    the node's samples are stale, so peer comparison
///                    must exclude it and must not raise a fault alarm
///                    against it.
enum class NodeHealth : int { kHealthy = 0, kDegraded = 1, kUnmonitorable = 2 };
const char* healthName(NodeHealth h);

/// Retry / timeout / breaker tunables (ExperimentSpec::rpcPolicy).
struct RpcPolicy {
  double timeoutSeconds = 0.25;   // per-attempt channel timeout
  int maxRetries = 3;             // attempts per round = 1 + maxRetries
  double backoffBase = 0.05;      // first backoff, doubled per retry
  double backoffMax = 2.0;        // backoff ceiling
  double jitterFrac = 0.25;       // +/- fraction applied to each backoff
  int breakerThreshold = 3;       // consecutive failed rounds -> OPEN
  double breakerRecoverySeconds = 10.0;  // OPEN -> HALF_OPEN probe delay
  double baseLatencySeconds = 0.002;     // healthy round-trip time
  double lossFailureExponent = 2.0;  // P(attempt fails) = lossRate^exp
};

/// Monitoring-plane fault state, poked by faults::MonitoringFaultInjector
/// on the engine schedule and read by RpcClient on every attempt.
/// Mutations happen in engine events, reads in module runs of later
/// events; the executor's dispatch ordering provides the needed
/// happens-before, so no locking is required.
class MonitoringFaultBoard {
 public:
  void setCrashed(NodeId node, Daemon d, bool crashed);
  void setHung(NodeId node, Daemon d, bool hung);
  /// Multiplies the channel's round-trip latency; 1.0 disables. Factors
  /// large enough to push latency past the timeout make calls fail.
  void setSlowFactor(NodeId node, Daemon d, double factor);
  /// Partitions the node: every channel of every daemon fails fast.
  void setPartitioned(NodeId node, bool partitioned);

  bool crashed(NodeId node, Daemon d) const;
  bool hung(NodeId node, Daemon d) const;
  double slowFactor(NodeId node, Daemon d) const;
  bool partitioned(NodeId node) const;

 private:
  struct NodeFaultState {
    std::array<bool, kDaemonCount> crashed{};
    std::array<bool, kDaemonCount> hung{};
    std::array<double, kDaemonCount> slow{1.0, 1.0, 1.0};
    bool partitioned = false;
  };
  const NodeFaultState* find(NodeId node) const;

  std::map<NodeId, NodeFaultState> nodes_;
};

/// Per-node circuit breaker over full fetch rounds (a round = one fetch
/// including all its retries). Time comes from the sim engine clock, so
/// transitions are deterministic.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(int threshold, double recoverySeconds)
      : threshold_(threshold), recovery_(recoverySeconds) {}

  /// kOpen reports as kHalfOpen once the recovery interval has elapsed.
  State state(SimTime now) const;
  /// False only while OPEN and still inside the recovery interval
  /// (callers fast-fail without touching the wire).
  bool allowRound(SimTime now) const;
  void onRoundSuccess(SimTime now);
  void onRoundFailure(SimTime now);

  int consecutiveFailures() const { return consecutiveFailures_; }
  long opens() const { return opens_; }

 private:
  int threshold_;
  double recovery_;
  int consecutiveFailures_ = 0;
  bool open_ = false;
  SimTime probeAt_ = kNoTime;
  long opens_ = 0;
};

/// Shared health bulletin: written by RpcClient after every fetch round,
/// read by the analysis modules (quorum / survivor selection), the
/// node_health module, and the harness. Internally locked — writers run
/// under per-node exclusivity domains but readers (analysis instances)
/// may run on other pool threads.
class NodeHealthRegistry {
 public:
  void registerNode(NodeId node);

  void markSuccess(NodeId node, Daemon d, SimTime now, bool degraded);
  void markFailure(NodeId node, Daemon d, SimTime now);

  /// Health of one daemon channel; kHealthy for unknown nodes.
  NodeHealth channelHealth(NodeId node, Daemon d) const;
  /// Worst health across the node's sadc and hadoop_log channels (the
  /// strace channel participates only once it has been polled).
  NodeHealth aggregate(NodeId node) const;
  /// Seconds since the channel's last successful fetch (0 when it has
  /// never been polled or just succeeded).
  double staleness(NodeId node, Daemon d, SimTime now) const;

  /// Registered nodes in id order.
  std::vector<NodeId> nodes() const;

 private:
  struct ChannelEntry {
    NodeHealth health = NodeHealth::kHealthy;
    SimTime lastSuccess = kNoTime;
    long successes = 0;
    long failures = 0;
  };

  mutable std::mutex mutex_;
  std::map<NodeId, std::array<ChannelEntry, kDaemonCount>> entries_;
};

/// One fetch-round outcome. `value` is meaningful only when ok.
template <typename T>
struct Fetched {
  bool ok = false;
  bool retried = false;  // succeeded, but not on the first attempt
  int attempts = 0;      // 0 = fast-failed on an open breaker
  T value{};
};

/// One RPC attempt, for the deterministic backoff-schedule tests: the
/// virtual time the attempt was issued and whether it succeeded.
struct AttemptRecord {
  SimTime at = kNoTime;
  Daemon daemon = Daemon::kSadc;
  int attempt = 0;
  bool success = false;
};

class RpcClient {
 public:
  RpcClient(hadoop::Cluster& cluster, RpcHub& hub, RpcPolicy policy,
            std::uint64_t seed);
  /// Live mode: fetches go over a real socket transport instead of the
  /// in-process hub. Timeout/retry/backoff/breaker behaviour, health
  /// bookkeeping and per-channel byte accounting are identical to the
  /// simulated constructor — the accounting lands in this client's own
  /// TransportRegistry (see transports()) since there is no hub.
  /// Backoffs between live attempts are real sleeps; pass
  /// `realBackoff = false` for replay collectors, whose "attempts"
  /// resolve instantly from the archive.
  RpcClient(LiveCollector& live, RpcPolicy policy, std::uint64_t seed,
            bool realBackoff = true);
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  Fetched<metrics::SadcSnapshot> fetchSadc(NodeId node, SimTime now);
  Fetched<std::vector<hadooplog::StateSample>> fetchTt(NodeId node,
                                                       SimTime now,
                                                       SimTime watermark);
  Fetched<std::vector<hadooplog::StateSample>> fetchDn(NodeId node,
                                                       SimTime now,
                                                       SimTime watermark);
  Fetched<syscalls::TraceSecond> fetchStrace(NodeId node, SimTime now);

  /// Flight-recorder tap: after every fetch round the observer sees
  /// the outcome (attempts/ok) plus, on success, the value re-encoded
  /// through the payload codec — byte-identical to what the daemon
  /// marshalled, so an archive written here replays exactly. Null
  /// detaches. Thread-safety matches the health registry's: set it
  /// before the run starts.
  void setObserver(CollectionObserver* observer) { observer_ = observer; }

  MonitoringFaultBoard& faults() { return board_; }
  NodeHealthRegistry& health() { return registry_; }
  const RpcPolicy& policy() const { return policy_; }
  RpcHub& hub() { return *hub_; }
  bool liveMode() const { return live_ != nullptr; }
  /// Per-channel byte accounting: the hub's registry in sim mode, the
  /// client's own in live mode.
  TransportRegistry& transports() {
    return hub_ != nullptr ? hub_->transports() : liveTransports_;
  }

  CircuitBreaker::State breakerState(NodeId node, SimTime now) const;

  /// Per-node attempt log (bounded; per-node order is deterministic).
  const std::vector<AttemptRecord>& attemptLog(NodeId node) const;

  // Aggregate robustness counters, summed over nodes on demand (no
  // shared mutable counters — nodes may be polled concurrently).
  long totalRounds() const;
  long totalRetries() const;
  long totalFailedRounds() const;
  long totalFastFails() const;
  long totalBreakerOpens() const;

 private:
  struct NodeState {
    Rng rng;
    CircuitBreaker breaker;
    std::vector<AttemptRecord> log;
    long rounds = 0;
    long retries = 0;
    long failedRounds = 0;
    long fastFails = 0;
    NodeState(std::uint64_t seed, const RpcPolicy& p)
        : rng(seed),
          breaker(p.breakerThreshold, p.breakerRecoverySeconds) {}
  };
  struct RoundOutcome {
    bool ok = false;
    bool retried = false;
    int attempts = 0;
  };

  NodeState& state(NodeId node);
  const NodeState& state(NodeId node) const;
  /// Runs the retry loop for one fetch round. Does not touch the daemon
  /// itself — the caller invokes the real fetch iff the round succeeds.
  RoundOutcome round(NodeId node, Daemon d, const std::string& channelName,
                     SimTime now);
  /// Decides one attempt: success flag plus the virtual seconds it
  /// consumed (latency on success, timeout or refusal cost on failure).
  bool attemptSucceeds(NodeState& st, NodeId node, Daemon d,
                       double& costSeconds);
  /// Live-mode retry loop: `attempt` performs one real call and, on
  /// success, reports the response bytes to account. Sleeps real
  /// backoffs between attempts; charges kCollectRequestBytes per
  /// failed attempt exactly as the simulated round() does.
  RoundOutcome liveRound(NodeId node, Daemon d,
                         const std::string& channelName, SimTime now,
                         const std::function<bool(std::size_t&)>& attempt);
  /// Reports one fetch round to the observer (no-op when detached).
  /// `encode` marshals the fetched value; only called when ok.
  void emitSample(CollectKind kind, NodeId node, SimTime now,
                  SimTime watermark, const RoundOutcome& r,
                  const std::function<void(Encoder&)>& encode);

  hadoop::Cluster* cluster_ = nullptr;
  RpcHub* hub_ = nullptr;
  LiveCollector* live_ = nullptr;
  CollectionObserver* observer_ = nullptr;
  bool realBackoff_ = true;
  RpcPolicy policy_;
  MonitoringFaultBoard board_;
  NodeHealthRegistry registry_;
  TransportRegistry liveTransports_;  // live mode only
  std::map<NodeId, NodeState> states_;
};

/// Parses an analysis origin label of the form "slave<k>"; kInvalidNode
/// when the label has a different shape (custom test pipelines).
NodeId nodeIdFromOrigin(const std::string& origin);

}  // namespace asdf::rpc
