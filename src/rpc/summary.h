// Partial-summary payloads and the aggregator's publication board
// (DESIGN.md §12).
//
// The aggregation tier ships one GroupSummary per analysis window
// upward. Its flat double-vector pack() form (analysis/partials.h) is
// the canonical layout; this header defines how that vector rides the
// CRC-framed wire ({time:f64, packed:f64vec} per window) and the byte
// constants both transports charge, so Table 4's tier-2 numbers agree
// between the simulated and live topologies per window. The
// SummaryBoard is the hand-off point inside an aggregator process:
// the pipeline's agg modules append windows, the serving loop
// (net::AggServer) drains them for the root.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "rpc/wire.h"

namespace asdf::rpc {

/// Summary channels multiplexed over one aggregator connection.
enum class SummaryChannel : std::uint32_t {
  kBlackBox = 0,
  kWhiteBox = 1,
};
inline constexpr int kSummaryChannelCount = 2;

/// Request payload of a summary fetch (object id + operation name +
/// channel + watermark, ICE-style) — the tier-2 analogue of
/// kCollectRequestBytes, charged identically by both transports.
inline constexpr std::size_t kSummaryRequestBytes = 48;

/// One published summary window.
struct SummaryWindow {
  double time = 0.0;
  std::vector<double> packed;  // analysis::GroupSummary::pack() output
};

void encodeSummaryWindow(Encoder& enc, const SummaryWindow& window);
SummaryWindow decodeSummaryWindow(Decoder& dec);

/// Wire size of one encoded window: both tiers' accounting uses the
/// marshalled size, never sizeof() — identical across transports.
std::size_t summaryWindowWireBytes(std::size_t packedSize);

/// Thread-safe store of published windows, per channel. The pipeline
/// thread appends as analysis windows close; the serving thread copies
/// out everything past the requester's watermark. Windows are retained
/// for the run's lifetime (they are small — one per slide interval).
class SummaryBoard {
 public:
  void append(SummaryChannel channel, double time,
              const std::vector<double>& packed);

  /// Appends to `out` (cleared first) every window with time > since,
  /// in publication order. Returns the number of windows copied.
  std::size_t fetchSince(SummaryChannel channel, double since,
                         std::vector<SummaryWindow>& out) const;

  std::size_t windowCount(SummaryChannel channel) const;

 private:
  mutable std::mutex mutex_;
  std::vector<SummaryWindow> channels_[kSummaryChannelCount];
};

}  // namespace asdf::rpc
