// [print] — alarm sink.
//
// Binds to an analysis instance's outputs (Figure 3:
// "input[a] = @analysis"), logs fingerpointing alarms, and forwards
// them to the environment's alarmSink so the embedding application
// (the experiment harness, a dashboard, ...) can consume them.
//
// When the upstream analysis exposes a "health" output (the
// fault-tolerant collection layer), the log line distinguishes the
// alarm taxonomy: a fingerpointed node is *faulty*; a node whose
// monitoring health is unmonitorable is reported separately — its flag
// of 0 means "don't know", not "not faulty" — and the health codes are
// forwarded on the Alarm record.
//
// Parameters:
//   quiet = 1 to suppress log lines (default 0)
#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class PrintModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    quiet_ = ctx.intParam("quiet", 0) != 0;
    const auto names = ctx.inputNames();
    if (names.empty()) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] print requires at least one input");
    }
    inputName_ = names.front();
    // Identify the alarms / scores / health connections by port name.
    for (std::size_t i = 0; i < ctx.inputWidth(inputName_); ++i) {
      const std::string& port = ctx.inputPortName(inputName_, i);
      if (port == "alarms") alarmsIdx_ = static_cast<int>(i);
      if (port == "scores") scoresIdx_ = static_cast<int>(i);
      if (port == "health") healthIdx_ = static_cast<int>(i);
    }
    if (alarmsIdx_ < 0 && ctx.inputWidth(inputName_) == 1) {
      alarmsIdx_ = 0;  // single unnamed stream: treat it as the alarms
    }
    if (alarmsIdx_ < 0) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] print found no 'alarms' output to bind");
    }
    ctx.setInputTrigger(1);
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    const auto a = static_cast<std::size_t>(alarmsIdx_);
    if (!ctx.inputHasData(inputName_, a) || !ctx.inputFresh(inputName_, a)) {
      return;
    }
    const core::Sample& sample = ctx.input(inputName_, a);
    if (!core::isVector(sample.value)) return;

    core::Alarm alarm;
    alarm.time = sample.time;
    alarm.channel = ctx.instanceId();
    alarm.flags = core::asVector(sample.value).toVector();
    alarm.origins = split(ctx.inputOrigin(inputName_, a), ';');
    if (scoresIdx_ >= 0 &&
        ctx.inputHasData(inputName_, static_cast<std::size_t>(scoresIdx_))) {
      const core::Sample& scores =
          ctx.input(inputName_, static_cast<std::size_t>(scoresIdx_));
      if (core::isVector(scores.value)) {
        alarm.scores = core::asVector(scores.value).toVector();
      }
    }
    if (healthIdx_ >= 0 &&
        ctx.inputHasData(inputName_, static_cast<std::size_t>(healthIdx_))) {
      const core::Sample& health =
          ctx.input(inputName_, static_cast<std::size_t>(healthIdx_));
      if (core::isVector(health.value)) {
        alarm.health = core::asVector(health.value).toVector();
      }
    }

    if (!quiet_) {
      const auto label = [&alarm](std::size_t i) {
        return i < alarm.origins.size() ? alarm.origins[i]
                                        : strformat("#%zu", i);
      };
      std::string flagged;
      for (std::size_t i = 0; i < alarm.flags.size(); ++i) {
        if (alarm.flags[i] > 0.5) {
          if (!flagged.empty()) flagged += ",";
          flagged += label(i);
        }
      }
      std::string unmonitorable;
      for (std::size_t i = 0; i < alarm.health.size(); ++i) {
        if (alarm.health[i] > 1.5) {  // NodeHealth::kUnmonitorable
          if (!unmonitorable.empty()) unmonitorable += ",";
          unmonitorable += label(i);
        }
      }
      std::string line =
          strformat("[%s] t=%.0f fingerpointed: %s", alarm.channel.c_str(),
                    alarm.time, flagged.empty() ? "-" : flagged.c_str());
      if (!unmonitorable.empty()) {
        line += strformat(" unmonitorable: %s", unmonitorable.c_str());
      }
      logInfo(line);
    }
    if (ctx.env().alarmSink) ctx.env().alarmSink(alarm);
  }

 private:
  bool quiet_ = false;
  std::string inputName_;
  int alarmsIdx_ = -1;
  int scoresIdx_ = -1;
  int healthIdx_ = -1;
};

void registerPrintModule(core::ModuleRegistry& registry) {
  registry.registerType("print",
                        [] { return std::make_unique<PrintModule>(); });
}

}  // namespace asdf::modules
