// [hadoop_log] — white-box data collection (Sections 3.7 / 4.4).
//
// Parameters:
//   node     = <slave id, 1-based>      (required)
//   interval = <seconds between polls>  (default 1)
//
// Outputs:
//   output0  — the per-second white-box state vector for the node:
//              5 TaskTracker states followed by 3 DataNode states,
//              released only at cross-node-synchronized timestamps.
//   health   — monitoring health of the poll (rpc::NodeHealth code:
//              0 healthy, 1 degraded/retried, 2 unmonitorable).
//
// Each poll asks the node's hadoop_log_rpcd for freshly finalized
// TaskTracker and DataNode state vectors, zips the two by second, and
// hands the merged row to the shared HadoopLogSync. The sync holds the
// row until every monitored node produced the same second ("the
// hadoop_log module waits for all nodes to reveal data with the same
// timestamp before updating its outputs"); rows a node never fills in
// are dropped. Each instance then writes whatever synchronized rows
// are newly available for its node — typically one per poll, one or
// two iterations behind real time, exactly like the original.
//
// Degraded mode: when the environment provides an "rpc_client" service
// and a fetch round fails (daemon crash, hang, partition, packet loss,
// open breaker), the module must still feed the sync — a silent node
// would hold back *every* peer's release forever. It synthesizes rows
// from the last known state halves (zeros when nothing was ever
// fetched) for the seconds the daemon should have finalized by now
// (watermark minus a small finalization lag), so the cross-node
// release cadence survives a dead collector. Real rows for seconds
// already synthesized are discarded when the daemon recovers.
#include <map>

#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "hadooplog/states.h"
#include "modules/modules.h"
#include "rpc/daemons.h"
#include "rpc/rpc_client.h"

namespace asdf::modules {
namespace {

// Seconds behind the poll watermark that a synthesized row trails:
// matches the parsers' own finalization delay, so a recovered daemon's
// real rows resume exactly where synthesis stopped.
constexpr long kSynthesisLagSeconds = 3;

}  // namespace

class HadoopLogModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    node_ = static_cast<NodeId>(ctx.intParam("node", -1));
    if (node_ < 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] hadoop_log requires a 'node' parameter >= 1");
    }
    const double interval = ctx.numParam("interval", 1.0);
    // Live-transport runs have no in-process hub (see sadc_module).
    hub_ = ctx.env().get<rpc::RpcHub>("rpc");
    client_ = ctx.env().get<rpc::RpcClient>("rpc_client");
    if (hub_ == nullptr && client_ == nullptr) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] hadoop_log needs an 'rpc' hub or an 'rpc_client'");
    }
    sync_ = &ctx.env().require<HadoopLogSync>("hl_sync");
    sync_->registerNode(node_);
    out_ = ctx.addOutput("output0", strformat("slave%d", node_));
    healthOut_ = ctx.addOutput("health", strformat("slave%d", node_));
    ctx.requestPeriodic(interval);
    // The daemon charges CPU/network to this node, and the sync's
    // release timing depends on push order across instances: serialize
    // with the node's other collectors and with all hadoop_log peers.
    ctx.requestExclusive(strformat("node%d", node_));
    ctx.requestExclusive("hl-sync");
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    const SimTime watermark = ctx.now();
    rpc::NodeHealth health = rpc::NodeHealth::kHealthy;
    if (client_ == nullptr) {
      ingestTt(hub_->hadoopLog(node_).fetchTt(watermark));
      ingestDn(hub_->hadoopLog(node_).fetchDn(watermark));
    } else {
      auto tt = client_->fetchTt(node_, watermark, watermark);
      auto dn = tt.ok ? client_->fetchDn(node_, watermark, watermark)
                      : decltype(tt){};
      if (tt.ok && dn.ok) {
        ingestTt(tt.value);
        ingestDn(dn.value);
        health = (tt.retried || dn.retried) ? rpc::NodeHealth::kDegraded
                                            : rpc::NodeHealth::kHealthy;
      } else {
        health = rpc::NodeHealth::kUnmonitorable;
        synthesizeThrough(static_cast<long>(watermark) -
                          kSynthesisLagSeconds);
      }
    }
    for (auto& [second, wb] : sync_->drain(node_)) {
      (void)second;  // Sample time is the write time; the row order is
                     // the synchronized second order.
      ctx.write(out_, std::move(wb));
    }
    ctx.write(healthOut_, core::VecBuf{static_cast<double>(health)});
  }

 private:
  void ingestTt(const std::vector<hadooplog::StateSample>& samples) {
    for (const auto& s : samples) {
      lastTt_ = s.counts;
      partial_[s.second].first = s.counts;
      partialHasTt_[s.second] = true;
      flushPartial();
    }
  }

  void ingestDn(const std::vector<hadooplog::StateSample>& samples) {
    for (const auto& s : samples) {
      lastDn_ = s.counts;
      partial_[s.second].second = s.counts;
      partialHasDn_[s.second] = true;
      flushPartial();
    }
  }

  void flushPartial() {
    // Push every second for which both halves arrived.
    for (auto it = partial_.begin(); it != partial_.end();) {
      const long second = it->first;
      if (!partialHasTt_[second] || !partialHasDn_[second]) {
        ++it;
        continue;
      }
      // Seconds already covered by synthesized rows (the daemon was
      // down when they were due) must not be pushed twice — and real
      // pushes advance the anchor so a later outage resumes synthesis
      // from the last pushed second instead of re-pushing history.
      if (!anchored_ || second > lastSynthesized_) {
        std::vector<double>& wb = rowBuilder_.acquire();
        wb.assign(it->second.first.begin(), it->second.first.end());
        wb.insert(wb.end(), it->second.second.begin(),
                  it->second.second.end());
        sync_->push(node_, second, rowBuilder_.share());
        lastSynthesized_ = second;
        anchored_ = true;
      }
      partialHasTt_.erase(second);
      partialHasDn_.erase(second);
      it = partial_.erase(it);
    }
  }

  void synthesizeThrough(long uptoSecond) {
    if (uptoSecond < 0) return;
    if (!anchored_) {
      // The daemon was never reachable: synthesize forward only, from
      // the second its parsers would have been finalizing now.
      lastSynthesized_ = uptoSecond - 1;
      anchored_ = true;
    }
    if (lastTt_.empty()) lastTt_.assign(hadooplog::kTtStateCount, 0.0);
    if (lastDn_.empty()) lastDn_.assign(hadooplog::kDnStateCount, 0.0);
    for (long s = lastSynthesized_ + 1; s <= uptoSecond; ++s) {
      // Prefer any real half that arrived before the daemon died.
      const auto it = partial_.find(s);
      const std::vector<double>& tt =
          (it != partial_.end() && partialHasTt_[s]) ? it->second.first
                                                     : lastTt_;
      const std::vector<double>& dn =
          (it != partial_.end() && partialHasDn_[s]) ? it->second.second
                                                     : lastDn_;
      std::vector<double>& wb = rowBuilder_.acquire();
      wb.assign(tt.begin(), tt.end());
      wb.insert(wb.end(), dn.begin(), dn.end());
      sync_->push(node_, s, rowBuilder_.share());
      if (it != partial_.end()) {
        partialHasTt_.erase(s);
        partialHasDn_.erase(s);
        partial_.erase(it);
      }
      lastSynthesized_ = s;
    }
  }

  NodeId node_ = kInvalidNode;
  rpc::RpcHub* hub_ = nullptr;
  rpc::RpcClient* client_ = nullptr;
  HadoopLogSync* sync_ = nullptr;
  int out_ = -1;
  int healthOut_ = -1;
  /// Highest second pushed to the sync (real or synthesized); valid
  /// only once anchored_ is set by the first push.
  bool anchored_ = false;
  long lastSynthesized_ = 0;
  /// Pooled buffers for rows handed to the sync; once every consumer
  /// of a row drops its handle the buffer returns to this pool.
  core::VecBuilder rowBuilder_;
  std::vector<double> lastTt_;
  std::vector<double> lastDn_;
  std::map<long, std::pair<std::vector<double>, std::vector<double>>>
      partial_;
  std::map<long, bool> partialHasTt_;
  std::map<long, bool> partialHasDn_;
};

void registerHadoopLogModule(core::ModuleRegistry& registry) {
  registry.registerType(
      "hadoop_log", [] { return std::make_unique<HadoopLogModule>(); });
}

// ---------------------------------------------------------------------------
// HadoopLogSync

void HadoopLogSync::registerNode(NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_.insert(node);
  drainCursor_.emplace(node, releasedBase_ + released_.size());
}

void HadoopLogSync::push(NodeId node, long second, core::VecBuf wb) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& row = pending_[second];
  row[node] = std::move(wb);
  if (row.size() < nodes_.size()) return;

  // Complete: release this row and drop any older incomplete seconds —
  // they can no longer complete in order.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first > second) break;
    if (it->first < second) {
      ++dropped_;
      it = pending_.erase(it);
      continue;
    }
    released_.push_back(ReleasedRow{it->first, std::move(it->second)});
    it = pending_.erase(it);
  }
}

std::vector<std::pair<long, core::VecBuf>> HadoopLogSync::drain(
    NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<long, core::VecBuf>> out;
  auto& cursor = drainCursor_[node];
  if (cursor < releasedBase_) cursor = releasedBase_;
  const std::size_t end = releasedBase_ + released_.size();
  while (cursor < end) {
    const ReleasedRow& row = released_[cursor - releasedBase_];
    const auto it = row.byNode.find(node);
    if (it != row.byNode.end()) {
      out.emplace_back(row.second, it->second);  // shares the buffer
    }
    ++cursor;
  }
  // Prune rows every registered node has drained: dropping the last
  // handle releases each row's buffer back to its producer's pool.
  std::size_t minCursor = end;
  for (const NodeId n : nodes_) {
    const auto it = drainCursor_.find(n);
    const std::size_t c = it != drainCursor_.end() ? it->second : 0;
    if (c < minCursor) minCursor = c;
  }
  if (minCursor > releasedBase_) {
    released_.erase(released_.begin(),
                    released_.begin() +
                        static_cast<std::ptrdiff_t>(minCursor - releasedBase_));
    releasedBase_ = minCursor;
  }
  return out;
}

}  // namespace asdf::modules
