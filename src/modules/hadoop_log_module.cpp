// [hadoop_log] — white-box data collection (Sections 3.7 / 4.4).
//
// Parameters:
//   node     = <slave id, 1-based>      (required)
//   interval = <seconds between polls>  (default 1)
//
// Outputs:
//   output0  — the per-second white-box state vector for the node:
//              5 TaskTracker states followed by 3 DataNode states,
//              released only at cross-node-synchronized timestamps.
//
// Each poll asks the node's hadoop_log_rpcd for freshly finalized
// TaskTracker and DataNode state vectors, zips the two by second, and
// hands the merged row to the shared HadoopLogSync. The sync holds the
// row until every monitored node produced the same second ("the
// hadoop_log module waits for all nodes to reveal data with the same
// timestamp before updating its outputs"); rows a node never fills in
// are dropped. Each instance then writes whatever synchronized rows
// are newly available for its node — typically one per poll, one or
// two iterations behind real time, exactly like the original.
#include <map>

#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "hadooplog/states.h"
#include "modules/modules.h"
#include "rpc/daemons.h"

namespace asdf::modules {

class HadoopLogModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    node_ = static_cast<NodeId>(ctx.intParam("node", -1));
    if (node_ < 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] hadoop_log requires a 'node' parameter >= 1");
    }
    const double interval = ctx.numParam("interval", 1.0);
    hub_ = &ctx.env().require<rpc::RpcHub>("rpc");
    sync_ = &ctx.env().require<HadoopLogSync>("hl_sync");
    sync_->registerNode(node_);
    out_ = ctx.addOutput("output0", strformat("slave%d", node_));
    ctx.requestPeriodic(interval);
    // The daemon charges CPU/network to this node, and the sync's
    // release timing depends on push order across instances: serialize
    // with the node's other collectors and with all hadoop_log peers.
    ctx.requestExclusive(strformat("node%d", node_));
    ctx.requestExclusive("hl-sync");
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    const SimTime watermark = ctx.now();
    for (const auto& s : hub_->hadoopLog(node_).fetchTt(watermark)) {
      partial_[s.second].first = s.counts;
      partialHasTt_[s.second] = true;
      flushPartial();
    }
    for (const auto& s : hub_->hadoopLog(node_).fetchDn(watermark)) {
      partial_[s.second].second = s.counts;
      partialHasDn_[s.second] = true;
      flushPartial();
    }
    for (auto& [second, wb] : sync_->drain(node_)) {
      (void)second;  // Sample time is the write time; the row order is
                     // the synchronized second order.
      ctx.write(out_, std::move(wb));
    }
  }

 private:
  void flushPartial() {
    // Push every second for which both halves arrived.
    for (auto it = partial_.begin(); it != partial_.end();) {
      const long second = it->first;
      if (!partialHasTt_[second] || !partialHasDn_[second]) {
        ++it;
        continue;
      }
      std::vector<double> wb = it->second.first;
      wb.insert(wb.end(), it->second.second.begin(),
                it->second.second.end());
      sync_->push(node_, second, std::move(wb));
      partialHasTt_.erase(second);
      partialHasDn_.erase(second);
      it = partial_.erase(it);
    }
  }

  NodeId node_ = kInvalidNode;
  rpc::RpcHub* hub_ = nullptr;
  HadoopLogSync* sync_ = nullptr;
  int out_ = -1;
  std::map<long, std::pair<std::vector<double>, std::vector<double>>>
      partial_;
  std::map<long, bool> partialHasTt_;
  std::map<long, bool> partialHasDn_;
};

void registerHadoopLogModule(core::ModuleRegistry& registry) {
  registry.registerType(
      "hadoop_log", [] { return std::make_unique<HadoopLogModule>(); });
}

// ---------------------------------------------------------------------------
// HadoopLogSync

void HadoopLogSync::registerNode(NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_.insert(node);
  drainCursor_.emplace(node, released_.size());
}

void HadoopLogSync::push(NodeId node, long second, std::vector<double> wb) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& row = pending_[second];
  row[node] = std::move(wb);
  if (row.size() < nodes_.size()) return;

  // Complete: release this row and drop any older incomplete seconds —
  // they can no longer complete in order.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first > second) break;
    if (it->first < second) {
      ++dropped_;
      it = pending_.erase(it);
      continue;
    }
    released_.push_back(ReleasedRow{it->first, std::move(it->second)});
    it = pending_.erase(it);
  }
}

std::vector<std::pair<long, std::vector<double>>> HadoopLogSync::drain(
    NodeId node) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<long, std::vector<double>>> out;
  auto& cursor = drainCursor_[node];
  while (cursor < released_.size()) {
    const ReleasedRow& row = released_[cursor];
    const auto it = row.byNode.find(node);
    if (it != row.byNode.end()) {
      out.emplace_back(row.second, it->second);
    }
    ++cursor;
  }
  return out;
}

}  // namespace asdf::modules
