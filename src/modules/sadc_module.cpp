// [sadc] — black-box data collection (Section 3.5).
//
// Parameters:
//   node     = <slave id, 1-based>      (required)
//   interval = <seconds between polls>  (default 1)
//
// Outputs:
//   output0  — the flattened metric vector (64 node + 18 NIC metrics)
//              fetched from the node's sadc_rpcd daemon.
//   health   — monitoring health of the fetch (rpc::NodeHealth code:
//              0 healthy, 1 degraded/retried, 2 unmonitorable).
//
// When the environment provides an "rpc_client" service, fetches go
// through the fault-tolerant RpcClient: a failed round (daemon crash,
// hang, partition, packet loss, open breaker) does NOT block the
// pipeline — the module re-emits the last known vector (zeros when
// nothing was ever fetched) tagged health=2, so downstream windowing
// keeps its cadence and the analysis modules can exclude the stale
// stream. Without the service the fetch is direct and infallible, as
// in the paper.
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "metrics/sadc.h"
#include "modules/modules.h"
#include "rpc/daemons.h"
#include "rpc/rpc_client.h"

namespace asdf::modules {

class SadcModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    node_ = static_cast<NodeId>(ctx.intParam("node", -1));
    if (node_ < 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] sadc requires a 'node' parameter >= 1");
    }
    const double interval = ctx.numParam("interval", 1.0);
    // Live-transport runs have no in-process hub — the RpcClient talks
    // to asdf_rpcd over a socket — so the hub is required only when no
    // client is available to fetch through.
    hub_ = ctx.env().get<rpc::RpcHub>("rpc");
    client_ = ctx.env().get<rpc::RpcClient>("rpc_client");
    if (hub_ == nullptr && client_ == nullptr) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] sadc needs an 'rpc' hub or an 'rpc_client'");
    }
    out_ = ctx.addOutput("output0", strformat("slave%d", node_));
    healthOut_ = ctx.addOutput("health", strformat("slave%d", node_));
    ctx.requestPeriodic(interval);
    // The daemon charges collection CPU/network to this node's
    // activity counters; collectors for one node must not interleave.
    ctx.requestExclusive(strformat("node%d", node_));
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    rpc::NodeHealth health = rpc::NodeHealth::kHealthy;
    if (client_ == nullptr) {
      lastKnown_ = metrics::flattenNodeVector(hub_->sadc(node_).fetch());
    } else {
      auto fetched = client_->fetchSadc(node_, ctx.now());
      if (fetched.ok) {
        lastKnown_ = metrics::flattenNodeVector(fetched.value);
        health = fetched.retried ? rpc::NodeHealth::kDegraded
                                 : rpc::NodeHealth::kHealthy;
      } else {
        health = rpc::NodeHealth::kUnmonitorable;
      }
    }
    if (lastKnown_.empty()) {
      lastKnown_.assign(metrics::kFlatNodeVectorSize, 0.0);
    }
    // Publish through a pooled buffer: the ~82-metric vector is staged
    // once and shared by every consumer instead of deep-copied per
    // tick (lastKnown_ stays private for fault-tolerant re-emission).
    std::vector<double>& out = builder_.acquire();
    out.assign(lastKnown_.begin(), lastKnown_.end());
    ctx.write(out_, builder_.share());
    ctx.write(healthOut_, core::VecBuf{static_cast<double>(health)});
  }

 private:
  NodeId node_ = kInvalidNode;
  rpc::RpcHub* hub_ = nullptr;
  rpc::RpcClient* client_ = nullptr;
  int out_ = -1;
  int healthOut_ = -1;
  std::vector<double> lastKnown_;
  core::VecBuilder builder_;
};

void registerSadcModule(core::ModuleRegistry& registry) {
  registry.registerType("sadc",
                        [] { return std::make_unique<SadcModule>(); });
}

}  // namespace asdf::modules
