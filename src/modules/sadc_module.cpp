// [sadc] — black-box data collection (Section 3.5).
//
// Parameters:
//   node     = <slave id, 1-based>      (required)
//   interval = <seconds between polls>  (default 1)
//
// Outputs:
//   output0  — the flattened metric vector (64 node + 18 NIC metrics)
//              fetched from the node's sadc_rpcd daemon.
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "metrics/sadc.h"
#include "modules/modules.h"
#include "rpc/daemons.h"

namespace asdf::modules {

class SadcModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    node_ = static_cast<NodeId>(ctx.intParam("node", -1));
    if (node_ < 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] sadc requires a 'node' parameter >= 1");
    }
    const double interval = ctx.numParam("interval", 1.0);
    hub_ = &ctx.env().require<rpc::RpcHub>("rpc");
    out_ = ctx.addOutput("output0", strformat("slave%d", node_));
    ctx.requestPeriodic(interval);
    // The daemon charges collection CPU/network to this node's
    // activity counters; collectors for one node must not interleave.
    ctx.requestExclusive(strformat("node%d", node_));
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    const metrics::SadcSnapshot snap = hub_->sadc(node_).fetch();
    ctx.write(out_, metrics::flattenNodeVector(snap));
  }

 private:
  NodeId node_ = kInvalidNode;
  rpc::RpcHub* hub_ = nullptr;
  int out_ = -1;
};

void registerSadcModule(core::ModuleRegistry& registry) {
  registry.registerType("sadc",
                        [] { return std::make_unique<SadcModule>(); });
}

}  // namespace asdf::modules
