// [strace] — syscall-trace data collection + scoring (Section 5).
//
// Polls the node's strace_rpcd every second. During the warmup period
// it trains a first-order Markov model of the node's syscall-category
// transitions; afterwards it scores each second's trace by its average
// negative log-likelihood under the trained model, relative to the
// model's own entropy baseline, scaled so that "clearly off-model"
// lands above the white-box unit floor. The per-node score streams
// compose with the stock mavgvec + analysis_wb modules for peer
// comparison — a new data source plugged in without any new analysis
// code, which is the framework's whole point.
//
// Parameters:
//   node   = <slave id>            (required)
//   warmup = <training seconds>    (default 120)
//   scale  = <score multiplier>    (default 4)
//
// Outputs:
//   output0 — 1-dim vector: scaled |NLL - baseline| for the second
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"
#include "rpc/daemons.h"
#include "rpc/rpc_client.h"
#include "syscalls/markov.h"

namespace asdf::modules {

class StraceModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    node_ = static_cast<NodeId>(ctx.intParam("node", -1));
    if (node_ < 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] strace requires a 'node' parameter >= 1");
    }
    warmup_ = ctx.intParam("warmup", 120);
    scale_ = ctx.numParam("scale", 4.0);
    // Live-transport runs have no in-process hub (see sadc_module).
    hub_ = ctx.env().get<rpc::RpcHub>("rpc");
    client_ = ctx.env().get<rpc::RpcClient>("rpc_client");
    if (hub_ == nullptr && client_ == nullptr) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] strace needs an 'rpc' hub or an 'rpc_client'");
    }
    out_ = ctx.addOutput("output0", strformat("slave%d", node_));
    ctx.requestPeriodic(ctx.numParam("interval", 1.0));
    // The daemon charges collection CPU/network to this node's
    // activity counters; collectors for one node must not interleave.
    ctx.requestExclusive(strformat("node%d", node_));
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    syscalls::TraceSecond trace;
    if (client_ == nullptr) {
      trace = hub_->strace(node_).fetch();
    } else {
      auto fetched = client_->fetchStrace(node_, ctx.now());
      if (!fetched.ok) {
        // Keep the stream's cadence for downstream windowing: re-emit
        // the last known score while the daemon is unreachable (no
        // score at all during warmup — there is nothing to train on).
        ++seconds_;
        if (seconds_ > warmup_) {
          ctx.write(out_, core::VecBuf{lastScore_});  // inline, no alloc
        }
        return;
      }
      trace = std::move(fetched.value);
    }
    ++seconds_;
    if (seconds_ <= warmup_) {
      model_.train(trace);
      return;
    }
    // Deviation from the model, weighted by evidence: a near-empty
    // trace (idle node) says little either way, while a full buffer
    // of off-model calls is a strong signal. Without the weight, the
    // handful of calls an idle second produces scores as noisily as a
    // genuine anomaly.
    const double deviation =
        std::abs(model_.negLogLikelihood(trace) - model_.entropyBaseline());
    const double evidence =
        std::min(1.0, static_cast<double>(trace.size()) / 64.0);
    lastScore_ = scale_ * deviation * evidence;
    ctx.write(out_, core::VecBuf{lastScore_});  // inline, no alloc
  }

 private:
  NodeId node_ = kInvalidNode;
  long warmup_ = 120;
  double scale_ = 4.0;
  long seconds_ = 0;
  double lastScore_ = 0.0;
  rpc::RpcHub* hub_ = nullptr;
  rpc::RpcClient* client_ = nullptr;
  syscalls::MarkovModel model_;
  int out_ = -1;
};

void registerStraceModule(core::ModuleRegistry& registry) {
  registry.registerType("strace",
                        [] { return std::make_unique<StraceModule>(); });
}

}  // namespace asdf::modules
