// [ibuffer] — rate-mismatch buffer (Section 3.7).
//
// "A buffer module (ibuffer) has been written to collect individual
// data points from a data collection module output, and present the
// data as an array of data points to an analysis module, which can
// then process a larger data set more slowly."
//
// Parameters:
//   size  = <window length in samples>   (default 10)
//   slide = <samples between emissions>  (default 1)
//   gap   = <seconds>  (default 0 = gap detection disabled)
//   reset_on_gap = 1 to clear the buffer when consecutive input
//                  samples are more than `gap` seconds apart
//                  (default 0)
//
// Inputs:  input  — a scalar stream (e.g. knn state indices)
// Outputs: output0 — vector of the most recent `size` samples, emitted
//          every `slide` samples once the buffer has filled.
//
// Gap semantics: ibuffer counts samples, not seconds. When upstream
// samples are dropped (a collector outage, a module suppressing its
// output), the default behavior is explicit pass-through — the window
// silently spans the gap, mixing pre- and post-gap samples, and the
// emission cadence stretches by however many samples went missing.
// That is the right default for the fault-tolerant collection layer,
// where degraded collectors keep emitting stale-tagged samples so no
// gap ever forms. For sources that genuinely stop producing, set
// `reset_on_gap = 1` (with a `gap` threshold in seconds): a gap then
// discards the stale window instead of emitting windows that straddle
// the outage.
#include <vector>

#include "common/error.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class IBufferModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    size_ = static_cast<std::size_t>(ctx.intParam("size", 10));
    slide_ = static_cast<std::size_t>(ctx.intParam("slide", 1));
    if (size_ == 0 || slide_ == 0) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] ibuffer size and slide must be >= 1");
    }
    gap_ = ctx.numParam("gap", 0.0);
    resetOnGap_ = ctx.intParam("reset_on_gap", 0) != 0;
    if (resetOnGap_ && gap_ <= 0.0) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] ibuffer reset_on_gap requires a 'gap' "
                        "threshold > 0 seconds");
    }
    if (ctx.inputWidth("input") != 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] ibuffer requires exactly one 'input' connection");
    }
    out_ = ctx.addOutput("output0", ctx.inputOrigin("input", 0));
    ctx.setInputTrigger(1);
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    const core::Sample& sample = ctx.input("input", 0);
    if (!core::isScalar(sample.value)) {
      throw ConfigError("ibuffer expects a scalar input stream");
    }
    if (resetOnGap_ && lastTime_ != kNoTime &&
        sample.time - lastTime_ > gap_) {
      count_ = 0;
      head_ = 0;
      sinceEmit_ = 0;
    }
    lastTime_ = sample.time;
    // Fixed ring of the most recent `size_` samples; emission copies
    // the window in order into a pooled builder buffer, so history
    // consumers share one immutable snapshot per emission and the
    // steady state allocates nothing.
    if (ring_.size() < size_) ring_.resize(size_);
    if (count_ < size_) {
      ring_[(head_ + count_) % size_] = core::asScalar(sample.value);
      ++count_;
    } else {
      ring_[head_] = core::asScalar(sample.value);
      head_ = (head_ + 1) % size_;
    }
    ++sinceEmit_;
    if (count_ == size_ && sinceEmit_ >= slide_) {
      sinceEmit_ = 0;
      std::vector<double>& out = builder_.acquire();
      out.resize(size_);
      for (std::size_t i = 0; i < size_; ++i) {
        out[i] = ring_[(head_ + i) % size_];
      }
      ctx.write(out_, builder_.share());
    }
  }

 private:
  std::size_t size_ = 10;
  std::size_t slide_ = 1;
  std::size_t sinceEmit_ = 0;
  double gap_ = 0.0;
  bool resetOnGap_ = false;
  SimTime lastTime_ = kNoTime;
  std::vector<double> ring_;  // oldest at head_ once full
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  core::VecBuilder builder_;
  int out_ = -1;
};

void registerIBufferModule(core::ModuleRegistry& registry) {
  registry.registerType("ibuffer",
                        [] { return std::make_unique<IBufferModule>(); });
}

}  // namespace asdf::modules
