// [ibuffer] — rate-mismatch buffer (Section 3.7).
//
// "A buffer module (ibuffer) has been written to collect individual
// data points from a data collection module output, and present the
// data as an array of data points to an analysis module, which can
// then process a larger data set more slowly."
//
// Parameters:
//   size  = <window length in samples>   (default 10)
//   slide = <samples between emissions>  (default 1)
//
// Inputs:  input  — a scalar stream (e.g. knn state indices)
// Outputs: output0 — vector of the most recent `size` samples, emitted
//          every `slide` samples once the buffer has filled.
#include <deque>

#include "common/error.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class IBufferModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    size_ = static_cast<std::size_t>(ctx.intParam("size", 10));
    slide_ = static_cast<std::size_t>(ctx.intParam("slide", 1));
    if (size_ == 0 || slide_ == 0) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] ibuffer size and slide must be >= 1");
    }
    if (ctx.inputWidth("input") != 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] ibuffer requires exactly one 'input' connection");
    }
    out_ = ctx.addOutput("output0", ctx.inputOrigin("input", 0));
    ctx.setInputTrigger(1);
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    const core::Sample& sample = ctx.input("input", 0);
    if (!core::isScalar(sample.value)) {
      throw ConfigError("ibuffer expects a scalar input stream");
    }
    buf_.push_back(core::asScalar(sample.value));
    while (buf_.size() > size_) buf_.pop_front();
    ++sinceEmit_;
    if (buf_.size() == size_ && sinceEmit_ >= slide_) {
      sinceEmit_ = 0;
      ctx.write(out_, std::vector<double>(buf_.begin(), buf_.end()));
    }
  }

 private:
  std::size_t size_ = 10;
  std::size_t slide_ = 1;
  std::size_t sinceEmit_ = 0;
  std::deque<double> buf_;
  int out_ = -1;
};

void registerIBufferModule(core::ModuleRegistry& registry) {
  registry.registerType("ibuffer",
                        [] { return std::make_unique<IBufferModule>(); });
}

}  // namespace asdf::modules
