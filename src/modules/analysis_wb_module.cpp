// [analysis_wb] — the white-box fingerpointer (Section 4.4).
//
// Consumes, per node, the windowed mean and standard deviation of the
// Hadoop state vector (from mavgvec), computes the cross-node median
// of each metric's mean, and flags node i when some metric's
// |mean_i - median| exceeds max(1, k * sigma_median), with
// sigma_median the median of the nodes' window standard deviations
// for that metric — the paper's guard against constant metrics whose
// standard deviation is zero on most nodes.
//
// Parameters:
//   k = <threshold multiplier>  (default 3)
//
// Inputs:  a0..a(N-1) — per-node window means
//          d0..d(N-1) — per-node window standard deviations
// Outputs: alarms — 0/1 per node;  scores — per-node critical k (used
//          by offline k sweeps, Figure 6b)
#include <vector>

#include "analysis/peercompare.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class AnalysisWbModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    k_ = ctx.numParam("k", 3.0);
    for (int i = 0;; ++i) {
      const std::string meanName = strformat("a%d", i);
      const std::string devName = strformat("d%d", i);
      const std::size_t meanWidth = ctx.inputWidth(meanName);
      const std::size_t devWidth = ctx.inputWidth(devName);
      if (meanWidth == 0 && devWidth == 0) break;
      if (meanWidth != 1 || devWidth != 1) {
        throw ConfigError("[" + ctx.instanceId() + "] inputs '" + meanName +
                          "'/'" + devName +
                          "' must each bind exactly one output");
      }
      meanInputs_.push_back(meanName);
      devInputs_.push_back(devName);
    }
    if (meanInputs_.size() < 3) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] analysis_wb needs at least 3 node inputs "
                        "(median peer comparison)");
    }
    std::string origins;
    for (const auto& name : meanInputs_) {
      if (!origins.empty()) origins += ";";
      origins += ctx.inputOrigin(name, 0);
    }
    outAlarms_ = ctx.addOutput("alarms", origins);
    outScores_ = ctx.addOutput("scores", origins);
    ctx.setInputTrigger(static_cast<int>(meanInputs_.size() +
                                         devInputs_.size()));
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    for (std::size_t i = 0; i < meanInputs_.size(); ++i) {
      if (!ctx.inputHasData(meanInputs_[i], 0) ||
          !ctx.inputHasData(devInputs_[i], 0)) {
        return;
      }
    }
    std::vector<std::vector<double>> means;
    std::vector<std::vector<double>> stddevs;
    means.reserve(meanInputs_.size());
    stddevs.reserve(devInputs_.size());
    for (std::size_t i = 0; i < meanInputs_.size(); ++i) {
      const core::Sample& m = ctx.input(meanInputs_[i], 0);
      const core::Sample& d = ctx.input(devInputs_[i], 0);
      if (!core::isVector(m.value) || !core::isVector(d.value)) {
        throw ConfigError("analysis_wb expects vector inputs");
      }
      means.push_back(core::asVector(m.value));
      stddevs.push_back(core::asVector(d.value));
    }
    const analysis::PeerComparisonResult result =
        analysis::whiteBoxCompare(means, stddevs, k_);
    ctx.write(outAlarms_, result.flags);
    ctx.write(outScores_, result.scores);
  }

 private:
  double k_ = 3.0;
  std::vector<std::string> meanInputs_;
  std::vector<std::string> devInputs_;
  int outAlarms_ = -1;
  int outScores_ = -1;
};

void registerAnalysisWbModule(core::ModuleRegistry& registry) {
  registry.registerType(
      "analysis_wb", [] { return std::make_unique<AnalysisWbModule>(); });
}

}  // namespace asdf::modules
