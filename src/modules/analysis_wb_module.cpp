// [analysis_wb] — the white-box fingerpointer (Section 4.4).
//
// Consumes, per node, the windowed mean and standard deviation of the
// Hadoop state vector (from mavgvec), computes the cross-node median
// of each metric's mean, and flags node i when some metric's
// |mean_i - median| exceeds max(1, k * sigma_median), with
// sigma_median the median of the nodes' window standard deviations
// for that metric — the paper's guard against constant metrics whose
// standard deviation is zero on most nodes.
//
// Degraded mode: when the environment provides an "rpc_client"
// service, the module consults the NodeHealthRegistry and computes the
// medians over *surviving* (monitorable) peers only; an unmonitorable
// node is excluded from the median and never flagged. When fewer than
// `quorum` peers survive, alarms are suppressed (all flags zero) and a
// MonitoringEvent is emitted on the transition.
//
// Parameters:
//   k      = <threshold multiplier>  (default 3)
//   quorum = <min surviving peers for valid alarms>
//            (default 0 = majority: N/2 + 1, at least 3)
//
// Inputs:  a0..a(N-1) — per-node window means
//          d0..d(N-1) — per-node window standard deviations
// Outputs: alarms — 0/1 per node;  scores — per-node critical k (used
//          by offline k sweeps, Figure 6b);  health — per-node
//          monitoring health code (0/1/2)
#include <algorithm>
#include <vector>

#include "analysis/peercompare.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"
#include "rpc/rpc_client.h"

namespace asdf::modules {

class AnalysisWbModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    k_ = ctx.numParam("k", 3.0);
    client_ = ctx.env().get<rpc::RpcClient>("rpc_client");
    for (int i = 0;; ++i) {
      const std::string meanName = strformat("a%d", i);
      const std::string devName = strformat("d%d", i);
      const std::size_t meanWidth = ctx.inputWidth(meanName);
      const std::size_t devWidth = ctx.inputWidth(devName);
      if (meanWidth == 0 && devWidth == 0) break;
      if (meanWidth != 1 || devWidth != 1) {
        throw ConfigError("[" + ctx.instanceId() + "] inputs '" + meanName +
                          "'/'" + devName +
                          "' must each bind exactly one output");
      }
      meanInputs_.push_back(meanName);
      devInputs_.push_back(devName);
    }
    if (meanInputs_.size() < 3) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] analysis_wb needs at least 3 node inputs "
                        "(median peer comparison)");
    }
    const int quorumParam = static_cast<int>(ctx.intParam("quorum", 0));
    quorum_ =
        quorumParam > 0
            ? quorumParam
            : std::max<int>(3, static_cast<int>(meanInputs_.size()) / 2 + 1);

    std::string origins;
    for (const auto& name : meanInputs_) {
      if (!origins.empty()) origins += ";";
      const std::string origin = ctx.inputOrigin(name, 0);
      origins += origin;
      originLabels_.push_back(origin);
      nodeIds_.push_back(rpc::nodeIdFromOrigin(origin));
    }
    outAlarms_ = ctx.addOutput("alarms", origins);
    outScores_ = ctx.addOutput("scores", origins);
    outHealth_ = ctx.addOutput("health", origins);
    ctx.setInputTrigger(static_cast<int>(meanInputs_.size() +
                                         devInputs_.size()));
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    for (std::size_t i = 0; i < meanInputs_.size(); ++i) {
      if (!ctx.inputHasData(meanInputs_[i], 0) ||
          !ctx.inputHasData(devInputs_[i], 0)) {
        return;
      }
    }
    const std::size_t n = meanInputs_.size();
    // The window means/stddevs are consumed *in place* as row views of
    // the producers' shared buffers — the white-box path copies no
    // payload bytes at all.
    meanRows_.resize(n);
    devRows_.resize(n);
    std::size_t dims = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const core::Sample& m = ctx.input(meanInputs_[i], 0);
      const core::Sample& d = ctx.input(devInputs_[i], 0);
      if (!core::isVector(m.value) || !core::isVector(d.value)) {
        throw ConfigError("analysis_wb expects vector inputs");
      }
      const auto& mean = core::asVector(m.value);
      const auto& dev = core::asVector(d.value);
      if (i == 0) dims = mean.size();
      if (mean.size() != dims || dev.size() != dims) {
        throw ConfigError("analysis_wb input dimension mismatch");
      }
      meanRows_[i] = mean.data();
      devRows_[i] = dev.data();
    }

    std::vector<double>& health = healthBuilder_.acquire();
    health.assign(n, 0.0);
    survivors_.clear();
    std::vector<std::string> unmonitorable;
    for (std::size_t i = 0; i < n; ++i) {
      rpc::NodeHealth h = rpc::NodeHealth::kHealthy;
      if (client_ != nullptr && nodeIds_[i] != kInvalidNode) {
        h = client_->health().channelHealth(nodeIds_[i],
                                            rpc::Daemon::kHadoopLog);
      }
      health[i] = static_cast<double>(h);
      if (h == rpc::NodeHealth::kUnmonitorable) {
        unmonitorable.push_back(originLabels_[i]);
      } else {
        survivors_.push_back(i);
      }
    }
    const bool belowQuorum =
        static_cast<int>(survivors_.size()) < std::max(quorum_, 3);

    std::vector<double>& flags = flagsBuilder_.acquire();
    std::vector<double>& scores = scoresBuilder_.acquire();
    flags.assign(n, 0.0);
    scores.assign(n, 0.0);
    if (!belowQuorum) {
      // Compact the survivor rows in place (survivors_ is ascending,
      // so reads stay ahead of writes).
      for (std::size_t j = 0; j < survivors_.size(); ++j) {
        meanRows_[j] = meanRows_[survivors_[j]];
        devRows_[j] = devRows_[survivors_[j]];
      }
      survivorFlags_.resize(survivors_.size());
      survivorScores_.resize(survivors_.size());
      analysis::whiteBoxCompareInto(meanRows_.data(), devRows_.data(),
                                    survivors_.size(), dims, k_, scratch_,
                                    survivorFlags_.data(),
                                    survivorScores_.data());
      for (std::size_t j = 0; j < survivors_.size(); ++j) {
        flags[survivors_[j]] = survivorFlags_[j];
        scores[survivors_[j]] = survivorScores_[j];
      }
    }
    emitTransitions(ctx, unmonitorable, belowQuorum,
                    static_cast<int>(survivors_.size()));
    ctx.write(outAlarms_, flagsBuilder_.share());
    ctx.write(outScores_, scoresBuilder_.share());
    ctx.write(outHealth_, healthBuilder_.share());
  }

 private:
  void emitTransitions(core::ModuleContext& ctx,
                       const std::vector<std::string>& unmonitorable,
                       bool belowQuorum, int survivors) {
    if (unmonitorable == lastUnmonitorable_ &&
        belowQuorum == lastBelowQuorum_) {
      return;
    }
    lastUnmonitorable_ = unmonitorable;
    lastBelowQuorum_ = belowQuorum;
    if (!ctx.env().monitoringSink) return;
    core::MonitoringEvent event;
    event.time = ctx.now();
    event.channel = ctx.instanceId();
    event.survivors = survivors;
    event.quorum = quorum_;
    event.belowQuorum = belowQuorum;
    event.unmonitorable = unmonitorable;
    ctx.env().monitoringSink(event);
  }

  double k_ = 3.0;
  int quorum_ = 0;
  rpc::RpcClient* client_ = nullptr;
  // Reused per-window workspace: zero steady-state allocations.
  analysis::PeerScratch scratch_;
  std::vector<const double*> meanRows_;
  std::vector<const double*> devRows_;
  std::vector<std::size_t> survivors_;
  std::vector<double> survivorFlags_;
  std::vector<double> survivorScores_;
  core::VecBuilder flagsBuilder_;
  core::VecBuilder scoresBuilder_;
  core::VecBuilder healthBuilder_;
  std::vector<std::string> meanInputs_;
  std::vector<std::string> devInputs_;
  std::vector<std::string> originLabels_;
  std::vector<NodeId> nodeIds_;
  std::vector<std::string> lastUnmonitorable_;
  bool lastBelowQuorum_ = false;
  int outAlarms_ = -1;
  int outScores_ = -1;
  int outHealth_ = -1;
};

void registerAnalysisWbModule(core::ModuleRegistry& registry) {
  registry.registerType(
      "analysis_wb", [] { return std::make_unique<AnalysisWbModule>(); });
}

}  // namespace asdf::modules
