// [analysis_bb_merge] — the black-box merge step of the aggregation
// tier (DESIGN.md §12).
//
// The root half of the [analysis_bb] split: consumes one GroupSummary
// per aggregator, merges the groups' median partials into the global
// median StateVector by count-and-select, and scores every surviving
// node exactly as the flat fingerpointer would — bit-identically,
// because rank selection over a multiset is order-independent and the
// scoring arithmetic is shared (analysis/partials.h). Quorum gating
// and MonitoringEvents carry over unchanged: the quorum is computed
// against the *total* node count, and a group whose aggregator has
// gone dark arrives as all-unmonitorable, shrinking the survivor set
// just like per-node collection failures do.
//
// Parameters:
//   threshold = <L1 distance threshold>  (default 60)
//   quorum    = <min surviving peers for valid alarms>
//               (default 0 = majority: N/2 + 1, at least 3)
//
// Inputs:  s0..s(A-1) — one packed GroupSummary per aggregator, whose
//          origins are the group's ';'-joined per-node labels in
//          ascending global order
// Outputs: alarms, scores, health — per node, identical layout and
//          values to the flat [analysis_bb]
#include <algorithm>
#include <vector>

#include "analysis/partials.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class MergeBbModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    threshold_ = ctx.numParam("threshold", 60.0);
    // Accepted for configuration compatibility with [analysis_bb].
    (void)ctx.intParam("window", 60);
    (void)ctx.intParam("slide", 5);

    for (int i = 0;; ++i) {
      const std::string name = strformat("s%d", i);
      const std::size_t width = ctx.inputWidth(name);
      if (width == 0) break;
      if (width != 1) {
        throw ConfigError("[" + ctx.instanceId() + "] input '" + name +
                          "' must bind exactly one output");
      }
      inputs_.push_back(name);
    }
    if (inputs_.empty()) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] analysis_bb_merge needs at least one summary "
                        "input");
    }

    // Each summary input's origin is the group's joined labels; the
    // concatenation recovers the flat module's per-node origin order.
    std::string origins;
    for (const auto& name : inputs_) {
      const std::string origin = ctx.inputOrigin(name, 0);
      if (!origins.empty()) origins += ";";
      origins += origin;
      const std::vector<std::string> labels = split(origin, ';');
      groupSizes_.push_back(labels.size());
      originLabels_.insert(originLabels_.end(), labels.begin(), labels.end());
    }
    totalNodes_ = originLabels_.size();
    if (totalNodes_ < 3) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] analysis_bb_merge needs at least 3 nodes across "
                        "its groups (median peer comparison)");
    }
    const int quorumParam = static_cast<int>(ctx.intParam("quorum", 0));
    quorum_ = quorumParam > 0
                  ? quorumParam
                  : std::max<int>(3, static_cast<int>(totalNodes_) / 2 + 1);

    outAlarms_ = ctx.addOutput("alarms", origins);
    outScores_ = ctx.addOutput("scores", origins);
    outHealth_ = ctx.addOutput("health", origins);
    ctx.setInputTrigger(static_cast<int>(inputs_.size()));
    summaries_.resize(inputs_.size());
    groups_.resize(inputs_.size());
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    for (const auto& name : inputs_) {
      if (!ctx.inputHasData(name, 0) || !ctx.inputFresh(name, 0)) return;
    }
    for (std::size_t g = 0; g < inputs_.size(); ++g) {
      const core::Sample& sample = ctx.input(inputs_[g], 0);
      if (!core::isVector(sample.value)) {
        throw ConfigError("analysis_bb_merge expects packed summary inputs");
      }
      const auto& packed = core::asVector(sample.value);
      if (!summaries_[g].unpack(packed.data(), packed.size()) ||
          summaries_[g].members != groupSizes_[g]) {
        throw ConfigError("analysis_bb_merge: malformed group summary on '" +
                          inputs_[g] + "'");
      }
      groups_[g] = &summaries_[g];
    }

    std::vector<double>& health = healthBuilder_.acquire();
    health.resize(totalNodes_);
    std::vector<std::string> unmonitorable;
    std::size_t offset = 0;
    std::size_t survivors = 0;
    for (std::size_t g = 0; g < summaries_.size(); ++g) {
      const analysis::GroupSummary& s = summaries_[g];
      for (std::size_t m = 0; m < s.members; ++m) {
        health[offset + m] = s.health[m];
        if (s.health[m] == 2.0) {
          unmonitorable.push_back(originLabels_[offset + m]);
        } else {
          ++survivors;
        }
      }
      offset += s.members;
    }
    const bool belowQuorum =
        static_cast<int>(survivors) < std::max(quorum_, 3);

    std::vector<double>& flags = flagsBuilder_.acquire();
    std::vector<double>& scores = scoresBuilder_.acquire();
    flags.assign(totalNodes_, 0.0);
    scores.assign(totalNodes_, 0.0);
    if (!belowQuorum) {
      analysis::mergeBlackBoxSummaries(groups_.data(), groups_.size(),
                                       threshold_, scratch_, flags.data(),
                                       scores.data());
    }
    emitTransitions(ctx, unmonitorable, belowQuorum,
                    static_cast<int>(survivors));
    ctx.write(outAlarms_, flagsBuilder_.share());
    ctx.write(outScores_, scoresBuilder_.share());
    ctx.write(outHealth_, healthBuilder_.share());
  }

 private:
  void emitTransitions(core::ModuleContext& ctx,
                       const std::vector<std::string>& unmonitorable,
                       bool belowQuorum, int survivors) {
    if (unmonitorable == lastUnmonitorable_ &&
        belowQuorum == lastBelowQuorum_) {
      return;
    }
    lastUnmonitorable_ = unmonitorable;
    lastBelowQuorum_ = belowQuorum;
    if (!ctx.env().monitoringSink) return;
    core::MonitoringEvent event;
    event.time = ctx.now();
    event.channel = ctx.instanceId();
    event.survivors = survivors;
    event.quorum = quorum_;
    event.belowQuorum = belowQuorum;
    event.unmonitorable = unmonitorable;
    ctx.env().monitoringSink(event);
  }

  double threshold_ = 60.0;
  int quorum_ = 0;
  std::size_t totalNodes_ = 0;
  // Reused per-window workspace: zero steady-state allocations.
  std::vector<analysis::GroupSummary> summaries_;
  std::vector<const analysis::GroupSummary*> groups_;
  analysis::TieredScratch scratch_;
  core::VecBuilder flagsBuilder_;
  core::VecBuilder scoresBuilder_;
  core::VecBuilder healthBuilder_;
  std::vector<std::string> inputs_;
  std::vector<std::size_t> groupSizes_;
  std::vector<std::string> originLabels_;
  std::vector<std::string> lastUnmonitorable_;
  bool lastBelowQuorum_ = false;
  int outAlarms_ = -1;
  int outScores_ = -1;
  int outHealth_ = -1;
};

void registerMergeBbModule(core::ModuleRegistry& registry) {
  registry.registerType("analysis_bb_merge",
                        [] { return std::make_unique<MergeBbModule>(); });
}

}  // namespace asdf::modules
