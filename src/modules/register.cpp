#include "modules/modules.h"

namespace asdf::modules {

void registerAggBbModule(core::ModuleRegistry&);
void registerAggWbModule(core::ModuleRegistry&);
void registerAnalysisMadModule(core::ModuleRegistry&);
void registerCsvSinkModule(core::ModuleRegistry&);
void registerMergeBbModule(core::ModuleRegistry&);
void registerMergeWbModule(core::ModuleRegistry&);
void registerMitigateModule(core::ModuleRegistry&);
void registerStraceModule(core::ModuleRegistry&);
void registerSadcModule(core::ModuleRegistry&);
void registerHadoopLogModule(core::ModuleRegistry&);
void registerIBufferModule(core::ModuleRegistry&);
void registerMavgvecModule(core::ModuleRegistry&);
void registerKnnModule(core::ModuleRegistry&);
void registerAnalysisBbModule(core::ModuleRegistry&);
void registerAnalysisWbModule(core::ModuleRegistry&);
void registerNodeHealthModule(core::ModuleRegistry&);
void registerPrintModule(core::ModuleRegistry&);

void registerBuiltinModules(core::ModuleRegistry* registry) {
  core::ModuleRegistry& r =
      registry != nullptr ? *registry : core::ModuleRegistry::global();
  registerSadcModule(r);
  registerHadoopLogModule(r);
  registerIBufferModule(r);
  registerMavgvecModule(r);
  registerKnnModule(r);
  registerAnalysisBbModule(r);
  registerAnalysisWbModule(r);
  registerAggBbModule(r);
  registerAggWbModule(r);
  registerMergeBbModule(r);
  registerMergeWbModule(r);
  registerAnalysisMadModule(r);
  registerNodeHealthModule(r);
  registerPrintModule(r);
  registerCsvSinkModule(r);
  registerMitigateModule(r);
  registerStraceModule(r);
}

}  // namespace asdf::modules
