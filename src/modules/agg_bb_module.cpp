// [agg_bb] — the black-box reduce step of the aggregation tier
// (DESIGN.md §12).
//
// Runs next to a *group* of leaves: consumes the same per-node ibuffer
// windows [analysis_bb] would, builds each node's StateVector, reads
// the group's monitoring health, and publishes a GroupSummary — the
// survivor histograms plus their sorted per-component median partial —
// instead of flagging anyone. Flagging, quorum gating and
// MonitoringEvents are the root's job ([analysis_bb_merge]): a group
// is too small a population to judge deviation against.
//
// Inputs:  l0..l(G-1) — one ibuffer window per group member
// Outputs: summary — the packed GroupSummary (analysis/partials.h)
//
// Environment (both optional):
//   "transports"    rpc::TransportRegistry — Table 4 accounting of the
//                   upward summary traffic (channel bb-summary-tcp,
//                   tier 2)
//   "summary_board" rpc::SummaryBoard — live aggregator processes
//                   publish each window here for the serving loop
#include <vector>

#include "analysis/bbmodel.h"
#include "analysis/partials.h"
#include "analysis/peercompare.h"
#include "common/error.h"
#include "common/matrix.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"
#include "rpc/rpc_client.h"
#include "rpc/summary.h"
#include "rpc/transport.h"

namespace asdf::modules {

class AggBbModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    const analysis::BlackBoxModel& model =
        ctx.env().require<analysis::BlackBoxModel>("bb_model");
    numStates_ = model.states();
    client_ = ctx.env().get<rpc::RpcClient>("rpc_client");
    board_ = ctx.env().get<rpc::SummaryBoard>("summary_board");

    for (int i = 0;; ++i) {
      const std::string name = strformat("l%d", i);
      const std::size_t width = ctx.inputWidth(name);
      if (width == 0) break;
      if (width != 1) {
        throw ConfigError("[" + ctx.instanceId() + "] input '" + name +
                          "' must bind exactly one output");
      }
      inputs_.push_back(name);
    }
    if (inputs_.empty()) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] agg_bb needs at least one node input");
    }

    std::string origins;
    for (const auto& name : inputs_) {
      if (!origins.empty()) origins += ";";
      const std::string origin = ctx.inputOrigin(name, 0);
      origins += origin;
      nodeIds_.push_back(rpc::nodeIdFromOrigin(origin));
    }
    outSummary_ = ctx.addOutput("summary", origins);
    ctx.setInputTrigger(static_cast<int>(inputs_.size()));

    if (auto* transports =
            ctx.env().get<rpc::TransportRegistry>("transports")) {
      channel_ = &transports->channel("bb-summary-tcp");
      channel_->setTier(2);
      channel_->recordConnect();  // one upward connection per group
    }
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    for (const auto& name : inputs_) {
      if (!ctx.inputHasData(name, 0) || !ctx.inputFresh(name, 0)) return;
    }
    const std::size_t n = inputs_.size();
    histograms_.resizeRows(n, numStates_);
    for (std::size_t i = 0; i < n; ++i) {
      const core::Sample& sample = ctx.input(inputs_[i], 0);
      if (!core::isVector(sample.value)) {
        throw ConfigError("agg_bb expects array inputs");
      }
      const auto& window = core::asVector(sample.value);
      analysis::stateHistogramInto(window.data(), window.size(),
                                   histograms_.row(i), numStates_);
    }

    summary_.time = ctx.now();
    summary_.members = n;
    summary_.dims = numStates_;
    summary_.hasDev = false;
    summary_.health.assign(n, 0.0);
    summary_.rows.clearRows();
    summary_.rows.resizeRows(0, numStates_);
    rowPtrs_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      rpc::NodeHealth h = rpc::NodeHealth::kHealthy;
      if (client_ != nullptr && nodeIds_[i] != kInvalidNode) {
        h = client_->health().channelHealth(nodeIds_[i], rpc::Daemon::kSadc);
      }
      summary_.health[i] = static_cast<double>(h);
      if (h != rpc::NodeHealth::kUnmonitorable) {
        summary_.rows.push_back(histograms_.row(i), numStates_);
      }
    }
    for (std::size_t j = 0; j < summary_.rows.size(); ++j) {
      rowPtrs_.push_back(summary_.rows.row(j));
    }
    analysis::reduceMedianPartial(rowPtrs_.data(), rowPtrs_.size(),
                                  numStates_, summary_.median);
    summary_.devMedian.clear();

    std::vector<double>& packed = packedBuilder_.acquire();
    summary_.pack(packed);
    if (channel_ != nullptr) {
      channel_->recordCall(rpc::kSummaryRequestBytes,
                           rpc::summaryWindowWireBytes(packed.size()));
    }
    if (board_ != nullptr) {
      board_->append(rpc::SummaryChannel::kBlackBox, ctx.now(), packed);
    }
    ctx.write(outSummary_, packedBuilder_.share());
  }

 private:
  std::size_t numStates_ = 0;
  rpc::RpcClient* client_ = nullptr;
  rpc::SummaryBoard* board_ = nullptr;
  rpc::RpcChannelStats* channel_ = nullptr;
  // Reused per-window workspace: zero steady-state allocations.
  Matrix histograms_;
  analysis::GroupSummary summary_;
  std::vector<const double*> rowPtrs_;
  core::VecBuilder packedBuilder_;
  std::vector<std::string> inputs_;
  std::vector<NodeId> nodeIds_;
  int outSummary_ = -1;
};

void registerAggBbModule(core::ModuleRegistry& registry) {
  registry.registerType("agg_bb",
                        [] { return std::make_unique<AggBbModule>(); });
}

}  // namespace asdf::modules
