// [mitigate] — active mitigation (Section 5).
//
// "We also plan to equip ASDF with the ability to actively mitigate
// the consequences of a performance problem once it is detected."
//
// Consumes an analysis instance's alarms; when the same node has been
// fingerpointed in `consecutive` successive windows (alarm-confidence,
// as in the paper's detection), it asks the environment's Mitigator
// service to quarantine that node — the harness implementation
// blacklists the TaskTracker at the JobTracker, so no further tasks
// land on the sick node. Each node is quarantined at most once.
//
// Parameters:
//   consecutive = <windows of confidence before acting>  (default 3)
//
// Inputs:  a — an analysis instance (binds its 'alarms' port)
// Outputs: actions — cumulative count of quarantines issued
#include <set>

#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class MitigateModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    consecutive_ = ctx.intParam("consecutive", 3);
    if (consecutive_ < 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] mitigate: consecutive must be >= 1");
    }
    mitigator_ = &ctx.env().require<Mitigator>("mitigator");
    const auto names = ctx.inputNames();
    if (names.empty()) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] mitigate requires an input");
    }
    inputName_ = names.front();
    alarmsIdx_ = -1;
    for (std::size_t i = 0; i < ctx.inputWidth(inputName_); ++i) {
      if (ctx.inputPortName(inputName_, i) == "alarms") {
        alarmsIdx_ = static_cast<int>(i);
      }
    }
    if (alarmsIdx_ < 0) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] mitigate found no 'alarms' output to bind");
    }
    out_ = ctx.addOutput("actions");
    ctx.setInputTrigger(1);
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    const auto a = static_cast<std::size_t>(alarmsIdx_);
    if (!ctx.inputHasData(inputName_, a) || !ctx.inputFresh(inputName_, a)) {
      return;
    }
    const core::Sample& sample = ctx.input(inputName_, a);
    if (!core::isVector(sample.value)) return;
    const auto& flags = core::asVector(sample.value);
    const auto origins = split(ctx.inputOrigin(inputName_, a), ';');
    streaks_.resize(flags.size(), 0);
    for (std::size_t i = 0; i < flags.size(); ++i) {
      streaks_[i] = flags[i] > 0.5 ? streaks_[i] + 1 : 0;
      if (streaks_[i] < consecutive_) continue;
      const std::string origin =
          i < origins.size() ? origins[i] : strformat("#%zu", i);
      if (!quarantined_.insert(origin).second) continue;
      logWarn(strformat("[%s] quarantining %s after %ld consecutive "
                        "anomalous windows",
                        ctx.instanceId().c_str(), origin.c_str(),
                        consecutive_));
      mitigator_->quarantine(origin, ctx.now());
      ++actions_;
      ctx.write(out_, static_cast<double>(actions_));
    }
  }

 private:
  long consecutive_ = 3;
  Mitigator* mitigator_ = nullptr;
  std::string inputName_;
  int alarmsIdx_ = -1;
  int out_ = -1;
  std::vector<long> streaks_;
  std::set<std::string> quarantined_;
  long actions_ = 0;
};

void registerMitigateModule(core::ModuleRegistry& registry) {
  registry.registerType("mitigate",
                        [] { return std::make_unique<MitigateModule>(); });
}

}  // namespace asdf::modules
