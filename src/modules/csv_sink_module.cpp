// [csv_sink] — offline data logging (Section 2.1's "Offline and online
// analyses" goal: "ASDF should support offline analyses ...
// effectively turning itself into a data-collection and data-logging
// engine in this scenario").
//
// Binds any number of outputs and appends one CSV row per fresh
// sample: time, producing instance origin, port name, then the values.
//
// Parameters:
//   file = <output path>   (required)
#include <memory>

#include "common/csv.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class CsvSinkModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    const std::string path = ctx.param("file");
    if (path.empty()) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] csv_sink requires a 'file' parameter");
    }
    if (ctx.inputNames().empty()) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] csv_sink requires at least one input");
    }
    writer_ = std::make_unique<CsvWriter>(path);
    writer_->header({"time", "origin", "port", "values..."});
    ctx.setInputTrigger(1);
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    for (const auto& name : ctx.inputNames()) {
      for (std::size_t i = 0; i < ctx.inputWidth(name); ++i) {
        if (!ctx.inputHasData(name, i) || !ctx.inputFresh(name, i)) continue;
        const core::Sample& sample = ctx.input(name, i);
        std::vector<std::string> row = {
            strformat("%.3f", sample.time),
            ctx.inputOrigin(name, i),
            ctx.inputPortName(name, i),
        };
        if (core::isScalar(sample.value)) {
          row.push_back(strformat("%.9g", core::asScalar(sample.value)));
        } else if (core::isVector(sample.value)) {
          for (double v : core::asVector(sample.value)) {
            row.push_back(strformat("%.9g", v));
          }
        } else {
          row.push_back(std::get<std::string>(sample.value));
        }
        writer_->row(row);
        ++rows_;
      }
    }
    writer_->flush();
  }

 private:
  std::unique_ptr<CsvWriter> writer_;
  long rows_ = 0;
};

void registerCsvSinkModule(core::ModuleRegistry& registry) {
  registry.registerType("csv_sink",
                        [] { return std::make_unique<CsvSinkModule>(); });
}

}  // namespace asdf::modules
