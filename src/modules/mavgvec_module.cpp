// [mavgvec] — moving mean/variance of a vector stream (Section 3).
//
// "mavgvec computes arithmetic mean and variance of a vector input
// over a sliding window of samples ... The sample vector size and
// window width are configurable, as is the number of samples to slide
// the window before generating new outputs."
//
// Parameters:
//   window = <window length in samples>   (default 60)
//   slide  = <samples between emissions>  (default 5)
//
// Inputs:  input — a vector stream
// Outputs: mean, var, stddev — per-dimension window statistics,
//          emitted every `slide` samples once the window has filled.
#include <vector>

#include "analysis/partials.h"
#include "common/error.h"
#include "common/stats.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class MavgvecModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    window_ = static_cast<std::size_t>(ctx.intParam("window", 60));
    slide_ = static_cast<std::size_t>(ctx.intParam("slide", 5));
    if (window_ == 0 || slide_ == 0) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] mavgvec window and slide must be >= 1");
    }
    if (ctx.inputWidth("input") != 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] mavgvec requires exactly one 'input' connection");
    }
    const std::string origin = ctx.inputOrigin("input", 0);
    outMean_ = ctx.addOutput("mean", origin);
    outVar_ = ctx.addOutput("var", origin);
    outStddev_ = ctx.addOutput("stddev", origin);
    ctx.setInputTrigger(1);
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    const core::Sample& sample = ctx.input("input", 0);
    if (!core::isVector(sample.value)) {
      throw ConfigError("mavgvec expects a vector input stream");
    }
    const auto& vec = core::asVector(sample.value);
    if (windows_.empty()) {
      windows_.assign(vec.size(), SlidingWindow(window_));
    }
    if (vec.size() != windows_.size()) {
      throw ConfigError("mavgvec input dimension changed mid-stream");
    }
    for (std::size_t d = 0; d < vec.size(); ++d) windows_[d].push(vec[d]);
    ++sinceEmit_;
    if (!windows_.front().full() || sinceEmit_ < slide_) return;
    sinceEmit_ = 0;

    std::vector<double>& mean = meanBuilder_.acquire();
    std::vector<double>& var = varBuilder_.acquire();
    std::vector<double>& stddev = stddevBuilder_.acquire();
    mean.resize(windows_.size());
    var.resize(windows_.size());
    stddev.resize(windows_.size());
    // The reduce step is shared with the aggregation tier: window
    // statistics are computed once, next to the ring buffers, and only
    // the results travel (analysis/partials.h explains why sums don't).
    analysis::reduceWindowStats(windows_.data(), windows_.size(), mean.data(),
                                var.data(), stddev.data());
    ctx.write(outMean_, meanBuilder_.share());
    ctx.write(outVar_, varBuilder_.share());
    ctx.write(outStddev_, stddevBuilder_.share());
  }

 private:
  std::size_t window_ = 60;
  std::size_t slide_ = 5;
  std::size_t sinceEmit_ = 0;
  std::vector<SlidingWindow> windows_;
  core::VecBuilder meanBuilder_;
  core::VecBuilder varBuilder_;
  core::VecBuilder stddevBuilder_;
  int outMean_ = -1;
  int outVar_ = -1;
  int outStddev_ = -1;
};

void registerMavgvecModule(core::ModuleRegistry& registry) {
  registry.registerType("mavgvec",
                        [] { return std::make_unique<MavgvecModule>(); });
}

}  // namespace asdf::modules
