// [analysis_mad] — black-box fingerpointing with a self-calibrating
// MAD decision rule (an alternative pluggable analysis; compare
// [analysis_bb]'s fixed trained threshold).
//
// Parameters:
//   k = <MAD multiplier>  (default 6)
//
// Inputs:  l0..l(N-1) — per-node ibuffer arrays of knn state indices
// Outputs: alarms, scores (scores are critical-k values, sweepable)
#include <vector>

#include "analysis/bbmodel.h"
#include "analysis/mad.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class AnalysisMadModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    k_ = ctx.numParam("k", 6.0);
    const analysis::BlackBoxModel& model =
        ctx.env().require<analysis::BlackBoxModel>("bb_model");
    numStates_ = model.states();
    for (int i = 0;; ++i) {
      const std::string name = strformat("l%d", i);
      if (ctx.inputWidth(name) == 0) break;
      if (ctx.inputWidth(name) != 1) {
        throw ConfigError("[" + ctx.instanceId() + "] input '" + name +
                          "' must bind exactly one output");
      }
      inputs_.push_back(name);
    }
    if (inputs_.size() < 3) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] analysis_mad needs at least 3 node inputs");
    }
    std::string origins;
    for (const auto& name : inputs_) {
      if (!origins.empty()) origins += ";";
      origins += ctx.inputOrigin(name, 0);
    }
    outAlarms_ = ctx.addOutput("alarms", origins);
    outScores_ = ctx.addOutput("scores", origins);
    ctx.setInputTrigger(static_cast<int>(inputs_.size()));
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    for (const auto& name : inputs_) {
      if (!ctx.inputHasData(name, 0) || !ctx.inputFresh(name, 0)) return;
    }
    std::vector<std::vector<double>> histograms;
    histograms.reserve(inputs_.size());
    for (const auto& name : inputs_) {
      const core::Sample& sample = ctx.input(name, 0);
      if (!core::isVector(sample.value)) {
        throw ConfigError("analysis_mad expects array inputs");
      }
      const auto& window = core::asVector(sample.value);
      histograms.emplace_back(numStates_);
      analysis::stateHistogramInto(window.data(), window.size(),
                                   histograms.back().data(), numStates_);
    }
    analysis::PeerComparisonResult result =
        analysis::blackBoxMadCompare(histograms, k_);
    ctx.write(outAlarms_, std::move(result.flags));
    ctx.write(outScores_, std::move(result.scores));
  }

 private:
  double k_ = 6.0;
  std::size_t numStates_ = 0;
  std::vector<std::string> inputs_;
  int outAlarms_ = -1;
  int outScores_ = -1;
};

void registerAnalysisMadModule(core::ModuleRegistry& registry) {
  registry.registerType(
      "analysis_mad", [] { return std::make_unique<AnalysisMadModule>(); });
}

}  // namespace asdf::modules
