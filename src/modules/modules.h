// The built-in ASDF module library.
//
// These are the module types the paper describes: the sadc and
// hadoop_log data-collection modules, the mavgvec / knn / ibuffer
// processing modules, the analysis_bb / analysis_wb fingerpointers,
// and the print alarm sink. registerBuiltinModules() installs them in
// a registry (static libraries would otherwise drop the registration
// objects); call it once at startup.
//
// Environment services the modules look up:
//   "rpc"         rpc::RpcHub             — sadc, hadoop_log, strace
//   "bb_model"    analysis::BlackBoxModel — knn, analysis_bb
//   "hl_sync"     modules::HadoopLogSync  — hadoop_log (optional;
//                                          created implicitly if absent)
//   "rpc_client"  rpc::RpcClient          — sadc, hadoop_log, strace,
//                                          analysis_bb, analysis_wb,
//                                          agg_bb, agg_wb
//                                          (optional; enables the
//                                          fault-tolerant collection
//                                          path and degraded analysis)
//   "node_health" rpc::NodeHealthRegistry — node_health
//   "transports"  rpc::TransportRegistry  — agg_bb, agg_wb (optional;
//                                          Table 4 accounting of the
//                                          tier-2 summary traffic)
//   "summary_board" rpc::SummaryBoard     — agg_bb, agg_wb (optional;
//                                          live aggregator processes
//                                          publish windows upward)
//   env.alarmSink                         — print
//   env.monitoringSink                    — analysis_bb, analysis_wb,
//                                          analysis_bb_merge,
//                                          analysis_wb_merge
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/types.h"
#include "core/registry.h"
#include "core/value.h"

namespace asdf::modules {

/// Installs every built-in module type into the registry (the global
/// one by default). Idempotent.
void registerBuiltinModules(core::ModuleRegistry* registry = nullptr);

/// Service interface the [mitigate] module acts through (environment
/// name "mitigator"): quarantine the node identified by an analysis
/// origin label (e.g. "slave3").
class Mitigator {
 public:
  virtual ~Mitigator() = default;
  virtual void quarantine(const std::string& origin, SimTime when) = 0;
};

/// Cross-instance synchronization for the hadoop_log module
/// (Section 3.7): per-second white-box rows are released only once
/// every registered node has produced that second, so the analysis
/// always sees rows from the same time point. Incomplete seconds that
/// fall behind a completed one are dropped (and counted).
///
/// Operations are internally locked. Note that locking alone does not
/// make release timing order-independent: which poll's push completes
/// a row decides which instances drain it this tick. The hadoop_log
/// module therefore also declares the "hl-sync" exclusivity domain so
/// the fpt-core scheduler serializes its instances in configuration
/// order under any executor, keeping release timing deterministic.
class HadoopLogSync {
 public:
  void registerNode(NodeId node);

  /// Adds node's white-box vector for `second`; may release rows.
  /// Rows are immutable COW buffers, so every instance draining the
  /// same second shares one payload instead of copying it.
  void push(NodeId node, long second, core::VecBuf wb);

  /// Released (second, row) handles for this node that have not been
  /// drained yet, in second order. Draining hands out cheap buffer
  /// references; the payload bytes are never duplicated.
  std::vector<std::pair<long, core::VecBuf>> drain(NodeId node);

  long droppedSeconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }
  std::size_t registeredNodes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.size();
  }

 private:
  struct ReleasedRow {
    long second;
    std::map<NodeId, core::VecBuf> byNode;
  };

  mutable std::mutex mutex_;
  std::set<NodeId> nodes_;
  std::map<long, std::map<NodeId, core::VecBuf>> pending_;
  /// Released rows not yet drained by every node. released_[i] holds
  /// absolute row index releasedBase_ + i; rows every cursor has
  /// passed are pruned so their buffers return to the producers'
  /// pools (zero steady-state allocations end to end).
  std::vector<ReleasedRow> released_;
  std::size_t releasedBase_ = 0;
  std::map<NodeId, std::size_t> drainCursor_;  // absolute row indices
  long dropped_ = 0;
};

}  // namespace asdf::modules
