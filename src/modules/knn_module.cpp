// [knn] — workload-state matching (Section 3.6).
//
// "The knn (k-nearest neighbors) module is used to match sample
// points with centroids corresponding to known system states ... For
// each input sample s, a vector s' is computed as
// s'_i = log(1 + s_i) / sigma_i and the Euclidean distance between s'
// and each centroid is computed. The indices of the k nearest
// centroids to s' are output."
//
// Parameters:
//   k          = <how many nearest indices to output> (default 1)
//   model_file = <path to a serialized BlackBoxModel>  (optional;
//                falls back to the "bb_model" environment service,
//                which is how the harness ships offline-trained
//                centroids into the online pipeline)
//
// Inputs:  input    — the raw metric vector stream (from sadc)
// Outputs: output0  — index of the nearest centroid (scalar)
//          outputK (k > 1) — index of the (K+1)-th nearest centroid
#include <fstream>
#include <sstream>

#include "analysis/bbmodel.h"
#include "analysis/kmeans.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class KnnModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    k_ = static_cast<std::size_t>(ctx.intParam("k", 1));
    if (k_ == 0) {
      throw ConfigError("[" + ctx.instanceId() + "] knn k must be >= 1");
    }
    if (ctx.inputWidth("input") != 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] knn requires exactly one 'input' connection");
    }
    const std::string modelFile = ctx.param("model_file");
    if (!modelFile.empty()) {
      std::ifstream in(modelFile);
      if (!in) {
        throw ConfigError("[" + ctx.instanceId() +
                          "] cannot open model_file " + modelFile);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      ownedModel_ = analysis::deserializeModel(buf.str());
      model_ = &ownedModel_;
    } else {
      model_ = &ctx.env().require<analysis::BlackBoxModel>("bb_model");
    }
    if (k_ > model_->states()) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] knn k exceeds the number of centroids");
    }
    const std::string origin = ctx.inputOrigin("input", 0);
    for (std::size_t i = 0; i < k_; ++i) {
      outs_.push_back(ctx.addOutput(strformat("output%zu", i), origin));
    }
    ctx.setInputTrigger(1);
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    const core::Sample& sample = ctx.input("input", 0);
    if (!core::isVector(sample.value)) {
      throw ConfigError("knn expects a vector input stream");
    }
    const auto& raw = core::asVector(sample.value);
    if (raw.size() != model_->dims()) {
      throw ConfigError(strformat(
          "knn input dimension %zu does not match model dimension %zu",
          raw.size(), model_->dims()));
    }
    // Flat hot path: transform into a preallocated scratch row and
    // rank centroids without per-sample allocation.
    transformed_.resize(model_->dims());
    model_->transformInto(raw.data(), raw.size(), transformed_.data());
    const auto& nearest = analysis::nearestCentroids(
        model_->centroids, transformed_.data(), k_, nearestScratch_);
    for (std::size_t i = 0; i < nearest.size(); ++i) {
      ctx.write(outs_[i], static_cast<double>(nearest[i]));
    }
  }

 private:
  std::size_t k_ = 1;
  const analysis::BlackBoxModel* model_ = nullptr;
  analysis::BlackBoxModel ownedModel_;
  std::vector<double> transformed_;
  analysis::NearestScratch nearestScratch_;
  std::vector<int> outs_;
};

void registerKnnModule(core::ModuleRegistry& registry) {
  registry.registerType("knn",
                        [] { return std::make_unique<KnnModule>(); });
}

}  // namespace asdf::modules
