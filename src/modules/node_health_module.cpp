// [node_health] — monitoring-plane health reporter.
//
// Surfaces the NodeHealthRegistry (fed by the fault-tolerant RpcClient
// after every fetch round) as a DAG output, so any consumer — a
// csv_sink recording a health timeline, a dashboard, a mitigation
// module — can observe per-node monitorability without touching the
// RPC layer. Each tick emits one vector with the *aggregate* health
// code per registered node (worst across the node's polled channels):
// 0 healthy, 1 degraded (retries needed), 2 unmonitorable.
//
// Environment services:
//   "node_health"  rpc::NodeHealthRegistry  (required)
//
// Parameters:
//   interval = <seconds between emissions>  (default 1)
//
// Outputs:
//   health — one code per registered node, origins "slave1;slave2;..."
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"
#include "rpc/rpc_client.h"

namespace asdf::modules {

class NodeHealthModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    registry_ = &ctx.env().require<rpc::NodeHealthRegistry>("node_health");
    nodes_ = registry_->nodes();
    std::string origins;
    for (NodeId node : nodes_) {
      if (!origins.empty()) origins += ";";
      origins += strformat("slave%d", node);
    }
    out_ = ctx.addOutput("health", origins);
    ctx.requestPeriodic(ctx.numParam("interval", 1.0));
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    std::vector<double>& codes = builder_.acquire();
    codes.reserve(nodes_.size());
    for (NodeId node : nodes_) {
      codes.push_back(static_cast<double>(registry_->aggregate(node)));
    }
    ctx.write(out_, builder_.share());
  }

 private:
  rpc::NodeHealthRegistry* registry_ = nullptr;
  std::vector<NodeId> nodes_;
  core::VecBuilder builder_;
  int out_ = -1;
};

void registerNodeHealthModule(core::ModuleRegistry& registry) {
  registry.registerType(
      "node_health", [] { return std::make_unique<NodeHealthModule>(); });
}

}  // namespace asdf::modules
