// [agg_wb] — the white-box reduce step of the aggregation tier
// (DESIGN.md §12).
//
// Consumes the group's per-node window means and standard deviations
// (from mavgvec — the statistics are computed leaf-side; see
// analysis/partials.h for why the raw window sums never travel),
// reads the group's monitoring health, and publishes a GroupSummary:
// the survivor mean rows plus sorted median partials over both the
// means and the stddevs. Flagging and quorum gating happen at the
// root ([analysis_wb_merge]).
//
// Inputs:  a0..a(G-1) — per-node window means
//          d0..d(G-1) — per-node window standard deviations
// Outputs: summary — the packed GroupSummary (analysis/partials.h)
//
// Environment (both optional): "transports" and "summary_board", as
// in [agg_bb] (channel wb-summary-tcp, tier 2).
#include <vector>

#include "analysis/partials.h"
#include "common/error.h"
#include "common/matrix.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"
#include "rpc/rpc_client.h"
#include "rpc/summary.h"
#include "rpc/transport.h"

namespace asdf::modules {

class AggWbModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    client_ = ctx.env().get<rpc::RpcClient>("rpc_client");
    board_ = ctx.env().get<rpc::SummaryBoard>("summary_board");
    for (int i = 0;; ++i) {
      const std::string meanName = strformat("a%d", i);
      const std::string devName = strformat("d%d", i);
      const std::size_t meanWidth = ctx.inputWidth(meanName);
      const std::size_t devWidth = ctx.inputWidth(devName);
      if (meanWidth == 0 && devWidth == 0) break;
      if (meanWidth != 1 || devWidth != 1) {
        throw ConfigError("[" + ctx.instanceId() + "] inputs '" + meanName +
                          "'/'" + devName +
                          "' must each bind exactly one output");
      }
      meanInputs_.push_back(meanName);
      devInputs_.push_back(devName);
    }
    if (meanInputs_.empty()) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] agg_wb needs at least one node input");
    }

    std::string origins;
    for (const auto& name : meanInputs_) {
      if (!origins.empty()) origins += ";";
      const std::string origin = ctx.inputOrigin(name, 0);
      origins += origin;
      nodeIds_.push_back(rpc::nodeIdFromOrigin(origin));
    }
    outSummary_ = ctx.addOutput("summary", origins);
    ctx.setInputTrigger(
        static_cast<int>(meanInputs_.size() + devInputs_.size()));

    if (auto* transports =
            ctx.env().get<rpc::TransportRegistry>("transports")) {
      channel_ = &transports->channel("wb-summary-tcp");
      channel_->setTier(2);
      channel_->recordConnect();
    }
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    for (std::size_t i = 0; i < meanInputs_.size(); ++i) {
      if (!ctx.inputHasData(meanInputs_[i], 0) ||
          !ctx.inputHasData(devInputs_[i], 0)) {
        return;
      }
    }
    const std::size_t n = meanInputs_.size();
    meanRows_.resize(n);
    devRows_.resize(n);
    std::size_t dims = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const core::Sample& m = ctx.input(meanInputs_[i], 0);
      const core::Sample& d = ctx.input(devInputs_[i], 0);
      if (!core::isVector(m.value) || !core::isVector(d.value)) {
        throw ConfigError("agg_wb expects vector inputs");
      }
      const auto& mean = core::asVector(m.value);
      const auto& dev = core::asVector(d.value);
      if (i == 0) dims = mean.size();
      if (mean.size() != dims || dev.size() != dims) {
        throw ConfigError("agg_wb input dimension mismatch");
      }
      meanRows_[i] = mean.data();
      devRows_[i] = dev.data();
    }

    summary_.time = ctx.now();
    summary_.members = n;
    summary_.dims = dims;
    summary_.hasDev = true;
    summary_.health.assign(n, 0.0);
    summary_.rows.clearRows();
    summary_.rows.resizeRows(0, dims);
    survivorMeans_.clear();
    survivorDevs_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      rpc::NodeHealth h = rpc::NodeHealth::kHealthy;
      if (client_ != nullptr && nodeIds_[i] != kInvalidNode) {
        h = client_->health().channelHealth(nodeIds_[i],
                                            rpc::Daemon::kHadoopLog);
      }
      summary_.health[i] = static_cast<double>(h);
      if (h != rpc::NodeHealth::kUnmonitorable) {
        summary_.rows.push_back(meanRows_[i], dims);
        survivorDevs_.push_back(devRows_[i]);
      }
    }
    for (std::size_t j = 0; j < summary_.rows.size(); ++j) {
      survivorMeans_.push_back(summary_.rows.row(j));
    }
    analysis::reduceMedianPartial(survivorMeans_.data(),
                                  survivorMeans_.size(), dims,
                                  summary_.median);
    analysis::reduceMedianPartial(survivorDevs_.data(), survivorDevs_.size(),
                                  dims, summary_.devMedian);

    std::vector<double>& packed = packedBuilder_.acquire();
    summary_.pack(packed);
    if (channel_ != nullptr) {
      channel_->recordCall(rpc::kSummaryRequestBytes,
                           rpc::summaryWindowWireBytes(packed.size()));
    }
    if (board_ != nullptr) {
      board_->append(rpc::SummaryChannel::kWhiteBox, ctx.now(), packed);
    }
    ctx.write(outSummary_, packedBuilder_.share());
  }

 private:
  rpc::RpcClient* client_ = nullptr;
  rpc::SummaryBoard* board_ = nullptr;
  rpc::RpcChannelStats* channel_ = nullptr;
  // Reused per-window workspace: zero steady-state allocations.
  analysis::GroupSummary summary_;
  std::vector<const double*> meanRows_;
  std::vector<const double*> devRows_;
  std::vector<const double*> survivorMeans_;
  std::vector<const double*> survivorDevs_;
  core::VecBuilder packedBuilder_;
  std::vector<std::string> meanInputs_;
  std::vector<std::string> devInputs_;
  std::vector<NodeId> nodeIds_;
  int outSummary_ = -1;
};

void registerAggWbModule(core::ModuleRegistry& registry) {
  registry.registerType("agg_wb",
                        [] { return std::make_unique<AggWbModule>(); });
}

}  // namespace asdf::modules
