// [analysis_bb] — the black-box fingerpointer (Section 4.5).
//
// Consumes, per node, a windowed array of 1-NN state indices (from an
// ibuffer downstream of knn), builds each node's StateVector (the
// per-window histogram of workload states), computes the
// component-wise median StateVector across nodes, and flags node j
// when || StateVector_j - medianStateVector ||_1 exceeds a
// pre-determined threshold.
//
// Parameters:
//   threshold = <L1 distance threshold>  (default 60)
//
// Inputs:  l0..l(N-1) — one per monitored node, each one ibuffer array
// Outputs: alarms — 0/1 per node;  scores — raw L1 distances (used by
//          offline threshold sweeps, Figure 6a)
#include <vector>

#include "analysis/bbmodel.h"
#include "analysis/peercompare.h"
#include "common/error.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"

namespace asdf::modules {

class AnalysisBbModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    threshold_ = ctx.numParam("threshold", 60.0);
    // Window/slide are properties of the upstream ibuffers; the values
    // are accepted here for configuration compatibility (Figure 3).
    (void)ctx.intParam("window", 60);
    (void)ctx.intParam("slide", 5);

    const analysis::BlackBoxModel& model =
        ctx.env().require<analysis::BlackBoxModel>("bb_model");
    numStates_ = model.states();

    // Enumerate the per-node inputs l0..l(N-1).
    for (int i = 0;; ++i) {
      const std::string name = strformat("l%d", i);
      const std::size_t width = ctx.inputWidth(name);
      if (width == 0) break;
      if (width != 1) {
        throw ConfigError("[" + ctx.instanceId() + "] input '" + name +
                          "' must bind exactly one output");
      }
      inputs_.push_back(name);
    }
    if (inputs_.size() < 3) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] analysis_bb needs at least 3 node inputs "
                        "(median peer comparison)");
    }

    std::string origins;
    for (const auto& name : inputs_) {
      if (!origins.empty()) origins += ";";
      origins += ctx.inputOrigin(name, 0);
    }
    outAlarms_ = ctx.addOutput("alarms", origins);
    outScores_ = ctx.addOutput("scores", origins);
    ctx.setInputTrigger(static_cast<int>(inputs_.size()));
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    // Fire only when every node's window arrived (lockstep upstream).
    for (const auto& name : inputs_) {
      if (!ctx.inputHasData(name, 0) || !ctx.inputFresh(name, 0)) return;
    }
    std::vector<std::vector<double>> histograms;
    histograms.reserve(inputs_.size());
    for (const auto& name : inputs_) {
      const core::Sample& sample = ctx.input(name, 0);
      if (!core::isVector(sample.value)) {
        throw ConfigError("analysis_bb expects array inputs");
      }
      histograms.push_back(analysis::stateHistogram(
          core::asVector(sample.value), numStates_));
    }
    const analysis::PeerComparisonResult result =
        analysis::blackBoxCompare(histograms, threshold_);
    ctx.write(outAlarms_, result.flags);
    ctx.write(outScores_, result.scores);
  }

 private:
  double threshold_ = 60.0;
  std::size_t numStates_ = 0;
  std::vector<std::string> inputs_;
  int outAlarms_ = -1;
  int outScores_ = -1;
};

void registerAnalysisBbModule(core::ModuleRegistry& registry) {
  registry.registerType(
      "analysis_bb", [] { return std::make_unique<AnalysisBbModule>(); });
}

}  // namespace asdf::modules
