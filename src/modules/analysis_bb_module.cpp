// [analysis_bb] — the black-box fingerpointer (Section 4.5).
//
// Consumes, per node, a windowed array of 1-NN state indices (from an
// ibuffer downstream of knn), builds each node's StateVector (the
// per-window histogram of workload states), computes the
// component-wise median StateVector across nodes, and flags node j
// when || StateVector_j - medianStateVector ||_1 exceeds a
// pre-determined threshold.
//
// Degraded mode: when the environment provides an "rpc_client"
// service, the module consults the NodeHealthRegistry and computes the
// median over *surviving* (monitorable) peers only — an unmonitorable
// node's stale histogram must neither be flagged nor skew the median.
// When fewer than `quorum` peers survive, alarms are suppressed (all
// flags zero) and a MonitoringEvent is emitted on the transition.
//
// Parameters:
//   threshold = <L1 distance threshold>  (default 60)
//   quorum    = <min surviving peers for valid alarms>
//               (default 0 = majority: N/2 + 1, at least 3)
//
// Inputs:  l0..l(N-1) — one per monitored node, each one ibuffer array
// Outputs: alarms — 0/1 per node;  scores — raw L1 distances (used by
//          offline threshold sweeps, Figure 6a);  health — per-node
//          monitoring health code (0/1/2)
#include <algorithm>
#include <vector>

#include "analysis/bbmodel.h"
#include "analysis/peercompare.h"
#include "common/error.h"
#include "common/matrix.h"
#include "common/strings.h"
#include "core/module.h"
#include "modules/modules.h"
#include "rpc/rpc_client.h"

namespace asdf::modules {

class AnalysisBbModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    threshold_ = ctx.numParam("threshold", 60.0);
    // Window/slide are properties of the upstream ibuffers; the values
    // are accepted here for configuration compatibility (Figure 3).
    (void)ctx.intParam("window", 60);
    (void)ctx.intParam("slide", 5);

    const analysis::BlackBoxModel& model =
        ctx.env().require<analysis::BlackBoxModel>("bb_model");
    numStates_ = model.states();
    client_ = ctx.env().get<rpc::RpcClient>("rpc_client");

    // Enumerate the per-node inputs l0..l(N-1).
    for (int i = 0;; ++i) {
      const std::string name = strformat("l%d", i);
      const std::size_t width = ctx.inputWidth(name);
      if (width == 0) break;
      if (width != 1) {
        throw ConfigError("[" + ctx.instanceId() + "] input '" + name +
                          "' must bind exactly one output");
      }
      inputs_.push_back(name);
    }
    if (inputs_.size() < 3) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] analysis_bb needs at least 3 node inputs "
                        "(median peer comparison)");
    }

    const int quorumParam = static_cast<int>(ctx.intParam("quorum", 0));
    quorum_ = quorumParam > 0
                  ? quorumParam
                  : std::max<int>(3, static_cast<int>(inputs_.size()) / 2 + 1);

    std::string origins;
    for (const auto& name : inputs_) {
      if (!origins.empty()) origins += ";";
      const std::string origin = ctx.inputOrigin(name, 0);
      origins += origin;
      originLabels_.push_back(origin);
      nodeIds_.push_back(rpc::nodeIdFromOrigin(origin));
    }
    outAlarms_ = ctx.addOutput("alarms", origins);
    outScores_ = ctx.addOutput("scores", origins);
    outHealth_ = ctx.addOutput("health", origins);
    ctx.setInputTrigger(static_cast<int>(inputs_.size()));
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    // Fire only when every node's window arrived (lockstep upstream).
    for (const auto& name : inputs_) {
      if (!ctx.inputHasData(name, 0) || !ctx.inputFresh(name, 0)) return;
    }
    const std::size_t n = inputs_.size();
    // Per-node StateVectors land in one reused row-major matrix; the
    // input windows are read in place from their shared buffers.
    histograms_.resizeRows(n, numStates_);
    for (std::size_t i = 0; i < n; ++i) {
      const core::Sample& sample = ctx.input(inputs_[i], 0);
      if (!core::isVector(sample.value)) {
        throw ConfigError("analysis_bb expects array inputs");
      }
      const auto& window = core::asVector(sample.value);
      analysis::stateHistogramInto(window.data(), window.size(),
                                   histograms_.row(i), numStates_);
    }

    // Survivor selection from the health registry (everyone survives
    // when there is no fault-tolerant collection layer).
    std::vector<double>& health = healthBuilder_.acquire();
    health.assign(n, 0.0);
    survivors_.clear();
    std::vector<std::string> unmonitorable;
    for (std::size_t i = 0; i < n; ++i) {
      rpc::NodeHealth h = rpc::NodeHealth::kHealthy;
      if (client_ != nullptr && nodeIds_[i] != kInvalidNode) {
        h = client_->health().channelHealth(nodeIds_[i],
                                            rpc::Daemon::kSadc);
      }
      health[i] = static_cast<double>(h);
      if (h == rpc::NodeHealth::kUnmonitorable) {
        unmonitorable.push_back(originLabels_[i]);
      } else {
        survivors_.push_back(i);
      }
    }

    // Peer comparison needs at least 3 participants to form a
    // meaningful median; below that (or below the configured quorum)
    // any flag would be guesswork — suppress.
    const bool belowQuorum =
        static_cast<int>(survivors_.size()) < std::max(quorum_, 3);

    std::vector<double>& flags = flagsBuilder_.acquire();
    std::vector<double>& scores = scoresBuilder_.acquire();
    flags.assign(n, 0.0);
    scores.assign(n, 0.0);
    if (!belowQuorum) {
      rowPtrs_.resize(survivors_.size());
      for (std::size_t j = 0; j < survivors_.size(); ++j) {
        rowPtrs_[j] = histograms_.row(survivors_[j]);
      }
      survivorFlags_.resize(survivors_.size());
      survivorScores_.resize(survivors_.size());
      analysis::blackBoxCompareInto(rowPtrs_.data(), survivors_.size(),
                                    numStates_, threshold_, scratch_,
                                    survivorFlags_.data(),
                                    survivorScores_.data());
      for (std::size_t j = 0; j < survivors_.size(); ++j) {
        flags[survivors_[j]] = survivorFlags_[j];
        scores[survivors_[j]] = survivorScores_[j];
      }
    }
    emitTransitions(ctx, unmonitorable, belowQuorum,
                    static_cast<int>(survivors_.size()));
    ctx.write(outAlarms_, flagsBuilder_.share());
    ctx.write(outScores_, scoresBuilder_.share());
    ctx.write(outHealth_, healthBuilder_.share());
  }

 private:
  void emitTransitions(core::ModuleContext& ctx,
                       const std::vector<std::string>& unmonitorable,
                       bool belowQuorum, int survivors) {
    if (unmonitorable == lastUnmonitorable_ &&
        belowQuorum == lastBelowQuorum_) {
      return;
    }
    lastUnmonitorable_ = unmonitorable;
    lastBelowQuorum_ = belowQuorum;
    if (!ctx.env().monitoringSink) return;
    core::MonitoringEvent event;
    event.time = ctx.now();
    event.channel = ctx.instanceId();
    event.survivors = survivors;
    event.quorum = quorum_;
    event.belowQuorum = belowQuorum;
    event.unmonitorable = unmonitorable;
    ctx.env().monitoringSink(event);
  }

  double threshold_ = 60.0;
  int quorum_ = 0;
  std::size_t numStates_ = 0;
  rpc::RpcClient* client_ = nullptr;
  // Reused per-window workspace: zero steady-state allocations.
  Matrix histograms_;
  analysis::PeerScratch scratch_;
  std::vector<std::size_t> survivors_;
  std::vector<const double*> rowPtrs_;
  std::vector<double> survivorFlags_;
  std::vector<double> survivorScores_;
  core::VecBuilder flagsBuilder_;
  core::VecBuilder scoresBuilder_;
  core::VecBuilder healthBuilder_;
  std::vector<std::string> inputs_;
  std::vector<std::string> originLabels_;
  std::vector<NodeId> nodeIds_;
  std::vector<std::string> lastUnmonitorable_;
  bool lastBelowQuorum_ = false;
  int outAlarms_ = -1;
  int outScores_ = -1;
  int outHealth_ = -1;
};

void registerAnalysisBbModule(core::ModuleRegistry& registry) {
  registry.registerType(
      "analysis_bb", [] { return std::make_unique<AnalysisBbModule>(); });
}

}  // namespace asdf::modules
