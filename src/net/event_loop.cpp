#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>

namespace asdf::net {
namespace {

std::uint32_t toEpollEvents(bool wantRead, bool wantWrite) {
  std::uint32_t ev = 0;
  if (wantRead) ev |= EPOLLIN;
  if (wantWrite) ev |= EPOLLOUT;
  return ev;
}

[[noreturn]] void throwErrno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epollFd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) throwErrno("epoll_create1");
  wakeupFd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeupFd_ < 0) {
    close(epollFd_);
    throwErrno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeupFd_;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeupFd_, &ev) < 0) {
    close(wakeupFd_);
    close(epollFd_);
    throwErrno("epoll_ctl(wakeup)");
  }
}

EventLoop::~EventLoop() {
  if (wakeupFd_ >= 0) close(wakeupFd_);
  if (epollFd_ >= 0) close(epollFd_);
}

void EventLoop::watchFd(int fd, bool wantRead, bool wantWrite,
                        FdCallback cb) {
  epoll_event ev{};
  ev.events = toEpollEvents(wantRead, wantWrite);
  ev.data.fd = fd;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throwErrno("epoll_ctl(add)");
  }
  fds_[fd] = std::move(cb);
}

void EventLoop::modifyFd(int fd, bool wantRead, bool wantWrite) {
  epoll_event ev{};
  ev.events = toEpollEvents(wantRead, wantWrite);
  ev.data.fd = fd;
  if (epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throwErrno("epoll_ctl(mod)");
  }
}

void EventLoop::unwatchFd(int fd) {
  if (fds_.erase(fd) == 0) return;
  epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
}

double EventLoop::monotonicSeconds() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int EventLoop::addTimer(double delaySeconds, TimerCallback cb) {
  const int id = nextTimerId_++;
  timers_[id] = std::move(cb);
  timerQueue_.push(Timer{monotonicSeconds() + std::max(0.0, delaySeconds),
                         nextTimerSeq_++, id});
  return id;
}

void EventLoop::cancelTimer(int id) { timers_.erase(id); }

int EventLoop::dispatchDueTimers() {
  int dispatched = 0;
  const double now = monotonicSeconds();
  while (!timerQueue_.empty() && timerQueue_.top().dueMonotonic <= now) {
    const Timer t = timerQueue_.top();
    timerQueue_.pop();
    const auto it = timers_.find(t.id);
    if (it == timers_.end()) continue;  // canceled
    TimerCallback cb = std::move(it->second);
    timers_.erase(it);
    cb();
    ++dispatched;
  }
  return dispatched;
}

int EventLoop::runOnce(double maxWaitSeconds) {
  // The wait ends at the earliest of: caller's cap, next timer.
  double wait = maxWaitSeconds;
  if (!timerQueue_.empty()) {
    const double untilTimer =
        std::max(0.0, timerQueue_.top().dueMonotonic - monotonicSeconds());
    wait = wait < 0 ? untilTimer : std::min(wait, untilTimer);
  }
  int timeoutMs = -1;
  if (wait >= 0) {
    timeoutMs = static_cast<int>(std::ceil(wait * 1000.0));
  }

  epoll_event events[64];
  int n = epoll_wait(epollFd_, events, 64, timeoutMs);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throwErrno("epoll_wait");
  }

  int dispatched = dispatchDueTimers();
  dispatched += drainPostedTasks();
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wakeupFd_) {
      std::uint64_t drain = 0;
      while (read(wakeupFd_, &drain, sizeof(drain)) > 0) {
      }
      continue;
    }
    // The callback for an earlier event may have unwatched this fd.
    const auto it = fds_.find(fd);
    if (it == fds_.end()) continue;
    std::uint32_t flags = 0;
    if (events[i].events & (EPOLLIN | EPOLLPRI)) flags |= kReadable;
    if (events[i].events & EPOLLOUT) flags |= kWritable;
    if (events[i].events & (EPOLLHUP | EPOLLERR)) flags |= kClosed;
    it->second(fd, flags);
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) {
    runOnce(-1.0);
  }
  // Final non-blocking drain: readiness that raced with stop() — a
  // peer close, a posted task — is dispatched instead of dropped, so
  // observable teardown state (connection counts, close callbacks) is
  // settled by the time run() returns. Without this, whether an EOF
  // that arrived just before stop() is processed depends on whether it
  // shared an epoll batch with the wakeup.
  runOnce(0.0);
}

void EventLoop::stop() {
  stopped_ = true;
  const std::uint64_t one = 1;
  // Best-effort: the loop also re-checks stopped_ after every wait.
  [[maybe_unused]] ssize_t n = write(wakeupFd_, &one, sizeof(one));
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(tasksMutex_);
    tasks_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wakeupFd_, &one, sizeof(one));
}

int EventLoop::drainPostedTasks() {
  std::vector<std::function<void()>> run;
  {
    std::lock_guard<std::mutex> lock(tasksMutex_);
    if (tasks_.empty()) return 0;
    run.swap(tasks_);
  }
  for (auto& task : run) task();
  return static_cast<int>(run.size());
}

}  // namespace asdf::net
