#include "net/shard_group.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace asdf::net {

ShardGroup::ShardGroup(const ShardGroupOptions& options) {
  const int n = std::max(1, options.shards);
  loops_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
  servers_.reserve(static_cast<std::size_t>(n));

  if (options.preferReusePort && n > 1) {
    try {
      servers_.push_back(std::make_unique<TcpServer>(
          *loops_[0], TcpServerOptions{options.port, /*reusePort=*/true,
                                       /*listen=*/true}));
      const std::uint16_t bound = servers_[0]->port();
      for (int i = 1; i < n; ++i) {
        servers_.push_back(std::make_unique<TcpServer>(
            *loops_[static_cast<std::size_t>(i)],
            TcpServerOptions{bound, /*reusePort=*/true, /*listen=*/true}));
      }
      reusePort_ = true;
    } catch (const NetError& e) {
      logWarn(std::string("net: SO_REUSEPORT sharding unavailable (") +
              e.what() + "); falling back to acceptor handoff");
      servers_.clear();
      reusePort_ = false;
    }
  }

  if (servers_.empty()) {
    // Single shard, or handoff fallback: shard 0 owns the listener.
    servers_.push_back(std::make_unique<TcpServer>(
        *loops_[0], TcpServerOptions{options.port, /*reusePort=*/false,
                                     /*listen=*/true}));
    for (int i = 1; i < n; ++i) {
      servers_.push_back(std::make_unique<TcpServer>(
          *loops_[static_cast<std::size_t>(i)],
          TcpServerOptions{servers_[0]->port(), /*reusePort=*/false,
                           /*listen=*/false}));
    }
    if (n > 1) installHandoff();
  }
  port_ = servers_[0]->port();
}

ShardGroup::~ShardGroup() {
  stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ShardGroup::installHandoff() {
  // Shard 0's accept interceptor round-robins raw fds across every
  // shard (keeping its own fair share). The target shard adopts the fd
  // on its own loop thread — connection state never crosses threads.
  servers_[0]->onAccept([this](int fd) {
    const std::size_t target =
        rr_.fetch_add(1, std::memory_order_relaxed) % servers_.size();
    if (target == 0) return false;  // shard 0 keeps this one
    TcpServer* srv = servers_[target].get();
    loops_[target]->post([srv, fd] { srv->adoptFd(fd); });
    return true;
  });
}

void ShardGroup::runOnCaller() {
  threads_.clear();
  for (std::size_t i = 1; i < loops_.size(); ++i) {
    EventLoop* loop = loops_[i].get();
    threads_.emplace_back([loop] { loop->run(); });
  }
  loops_[0]->run();
  // Shard 0 stopped (stop(), or a handler on this shard): bring the
  // rest down and join before returning to the caller.
  stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ShardGroup::stop() {
  for (auto& loop : loops_) loop->stop();
}

long ShardGroup::framesServed() const {
  long total = 0;
  for (const auto& s : servers_) total += s->framesServed();
  return total;
}

long ShardGroup::connectionsRejected() const {
  long total = 0;
  for (const auto& s : servers_) total += s->connectionsRejected();
  return total;
}

long ShardGroup::connectionsReaped() const {
  long total = 0;
  for (const auto& s : servers_) total += s->connectionsReaped();
  return total;
}

long ShardGroup::connectionsOverflowed() const {
  long total = 0;
  for (const auto& s : servers_) total += s->connectionsOverflowed();
  return total;
}

std::size_t ShardGroup::connectionCount() const {
  std::size_t total = 0;
  for (const auto& s : servers_) total += s->connectionCount();
  return total;
}

}  // namespace asdf::net
