// rpc::LiveCollector over a set of leaf daemons.
//
// An aggregator (asdf_aggd) collects from the leaf asdf_rpcd daemons
// of its region. With one daemon per monitored node, node firstNode+i
// is served by endpoint i; with fewer endpoints than nodes (a shared
// daemon hosting several nodes — the in-process test topology) nodes
// wrap around the endpoint list. Either way each fetch is routed to
// exactly one LiveTransport, and the retry / breaker / accounting
// machinery above (rpc::RpcClient) is unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/live_transport.h"
#include "rpc/live_collector.h"

namespace asdf::net {

class FanoutCollector final : public rpc::LiveCollector {
 public:
  /// Connects to every "host:port" endpoint (throws NetError when one
  /// is unreachable — an aggregator cannot start without its leaves).
  /// `firstNode` is the region's first monitored node id; used for the
  /// node -> endpoint routing described above.
  /// `backoffSeed` seeds the per-transport redial backoff jitter
  /// (endpoint i gets a split of it).
  FanoutCollector(const std::vector<std::string>& endpoints,
                  NodeId firstNode, double timeoutSeconds,
                  std::uint64_t backoffSeed = 1);

  int slaves() const override;

  bool fetchSadc(NodeId node, SimTime now, metrics::SadcSnapshot& out,
                 std::size_t& responseBytes) override;
  bool fetchTt(NodeId node, SimTime now, SimTime watermark,
               std::vector<hadooplog::StateSample>& out,
               std::size_t& responseBytes) override;
  bool fetchDn(NodeId node, SimTime now, SimTime watermark,
               std::vector<hadooplog::StateSample>& out,
               std::size_t& responseBytes) override;
  bool fetchStrace(NodeId node, SimTime now, syscalls::TraceSecond& out,
                   std::size_t& responseBytes) override;

  std::size_t endpointCount() const { return transports_.size(); }

 private:
  LiveTransport& transportFor(NodeId node);

  NodeId firstNode_;
  std::vector<std::unique_ptr<LiveTransport>> transports_;
};

/// Splits "host:port" (throws NetError on a malformed endpoint).
void parseEndpoint(const std::string& endpoint, std::string& host,
                   std::uint16_t& port);

}  // namespace asdf::net
