#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"

namespace asdf::net {
namespace {

void setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TcpServer::TcpServer(EventLoop& loop, std::uint16_t port)
    : TcpServer(loop, TcpServerOptions{port, /*reusePort=*/false,
                                       /*listen=*/true}) {}

TcpServer::TcpServer(EventLoop& loop, const TcpServerOptions& options)
    : loop_(loop) {
  connections_.reserve(64);
  if (!options.listen) {
    // Listenerless shard: connections arrive via adoptFd() only.
    port_ = options.port;
    return;
  }
  listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) {
    throw NetError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options.reusePort) {
    if (setsockopt(listenFd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
        0) {
      const std::string why = std::strerror(errno);
      close(listenFd_);
      listenFd_ = -1;
      throw NetError("setsockopt(SO_REUSEPORT): " + why);
    }
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    close(listenFd_);
    listenFd_ = -1;
    throw NetError("bind 127.0.0.1:" + std::to_string(options.port) + ": " +
                   why);
  }
  if (listen(listenFd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    close(listenFd_);
    listenFd_ = -1;
    throw NetError("listen: " + why);
  }
  socklen_t len = sizeof(addr);
  getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  setNonBlocking(listenFd_);

  loop_.watchFd(listenFd_, /*wantRead=*/true, /*wantWrite=*/false,
                [this](int, std::uint32_t) { handleAccept(); });
}

TcpServer::~TcpServer() {
  if (reapTimer_ >= 0) loop_.cancelTimer(reapTimer_);
  for (auto& [id, conn] : connections_) {
    loop_.unwatchFd(conn->fd_);
    close(conn->fd_);
  }
  connections_.clear();
  connectionCount_.store(0, std::memory_order_relaxed);
  if (listenFd_ >= 0) {
    loop_.unwatchFd(listenFd_);
    close(listenFd_);
  }
}

void TcpServer::handleAccept() {
  for (;;) {
    const int fd = accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; keep listening
    }
    if (acceptHook_ && acceptHook_(fd)) continue;  // handed to a shard
    addConnection(fd);
  }
}

void TcpServer::adoptFd(int fd) { addConnection(fd); }

void TcpServer::addConnection(int fd) {
  setNonBlocking(fd);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const std::uint64_t id = nextConnId_++;
  auto conn = std::make_unique<Connection>(*this, fd, id);
  conn->lastActivity_ = monotonicSeconds();
  Connection* raw = conn.get();
  connections_.emplace(id, std::move(conn));
  connectionCount_.store(connections_.size(), std::memory_order_relaxed);
  loop_.watchFd(fd, /*wantRead=*/true, /*wantWrite=*/false,
                [this, raw](int, std::uint32_t events) {
                  handleConnection(*raw, events);
                });
}

void TcpServer::handleConnection(Connection& conn, std::uint32_t events) {
  const std::uint64_t id = conn.id_;
  if (events & EventLoop::kClosed) {
    dropConnection(id);
    return;
  }
  if (events & EventLoop::kWritable) {
    flushOutbound(conn);
    if (connections_.find(id) == connections_.end()) return;
  }
  if ((events & EventLoop::kReadable) == 0) return;

  // Cork for the whole read batch: every response the handler queues
  // below accumulates in outbound_ and leaves in one syscall at the
  // flush after the loop.
  conn.corked_ = true;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = read(conn.fd_, buf, sizeof(buf));
    if (n > 0) {
      conn.lastActivity_ = monotonicSeconds();
      if (!conn.decoder_.feed(buf, static_cast<std::size_t>(n))) {
        // Malformed framing: the stream cannot be trusted past this
        // point. Count and drop; the loop (and every other
        // connection) keeps running.
        logWarn("net: dropping connection " + std::to_string(id) + ": " +
                frameErrorName(conn.decoder_.error()));
        connectionsRejected_.fetch_add(1, std::memory_order_relaxed);
        dropConnection(id);
        return;
      }
      dispatchDecoded(conn);
      // The handler may have closed or dropped the connection.
      if (connections_.find(id) == connections_.end()) return;
      continue;
    }
    if (n == 0) {
      // Orderly peer close: flush any responses to the requests it
      // pipelined before closing its write side, then drop.
      conn.corked_ = false;
      conn.closing_ = true;
      flushOutbound(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    dropConnection(id);
    return;
  }
  conn.corked_ = false;
  flushOutbound(conn);
}

void TcpServer::dispatchDecoded(Connection& conn) {
  const std::uint64_t id = conn.id_;
  while (conn.decoder_.next(conn.scratch_)) {
    framesServed_.fetch_add(1, std::memory_order_relaxed);
    if (handler_) {
      try {
        handler_(conn, conn.scratch_);
      } catch (const std::exception& e) {
        conn.sendError(ErrorCode::kInternal, e.what());
      }
    }
    if (connections_.find(id) == connections_.end()) return;
  }
}

void TcpServer::flushOutbound(Connection& conn) {
  if (conn.corked_) return;  // the batch leaves at uncork
  while (conn.outboundHead_ < conn.outbound_.size()) {
    const ssize_t n =
        send(conn.fd_, conn.outbound_.data() + conn.outboundHead_,
             conn.outbound_.size() - conn.outboundHead_, MSG_NOSIGNAL);
    if (n > 0) {
      conn.lastActivity_ = monotonicSeconds();
      conn.outboundHead_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    dropConnection(conn.id_);
    return;
  }
  if (conn.outboundHead_ == conn.outbound_.size()) {
    // Fully drained: reset the head offset, keep the capacity.
    conn.outbound_.clear();
    conn.outboundHead_ = 0;
    if (conn.closing_) {
      dropConnection(conn.id_);
      return;
    }
  }
  updateWriteInterest(conn);
}

void TcpServer::updateWriteInterest(Connection& conn) {
  const bool wantWrite = conn.outboundHead_ < conn.outbound_.size();
  const bool wantRead = !conn.closing_;
  if (wantWrite == conn.watchingWrite_ && wantRead == conn.watchingRead_) {
    return;  // epoll_ctl only on change
  }
  conn.watchingWrite_ = wantWrite;
  conn.watchingRead_ = wantRead;
  loop_.modifyFd(conn.fd_, wantRead, wantWrite);
}

void TcpServer::dropConnection(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  loop_.unwatchFd(it->second->fd_);
  close(it->second->fd_);
  connections_.erase(it);
  connectionCount_.store(connections_.size(), std::memory_order_relaxed);
}

void TcpServer::setIdleTimeout(double seconds) {
  idleTimeoutSeconds_ = seconds;
  if (reapTimer_ >= 0) {
    loop_.cancelTimer(reapTimer_);
    reapTimer_ = -1;
  }
  if (seconds > 0.0) armReapTimer();
}

void TcpServer::armReapTimer() {
  reapTimer_ = loop_.addTimer(std::max(0.05, idleTimeoutSeconds_ / 2.0),
                              [this] {
                                reapTimer_ = -1;
                                reapIdle();
                                if (idleTimeoutSeconds_ > 0.0) armReapTimer();
                              });
}

void TcpServer::reapIdle() {
  const double cutoff = monotonicSeconds() - idleTimeoutSeconds_;
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (conn->lastActivity_ < cutoff) idle.push_back(id);
  }
  for (const std::uint64_t id : idle) {
    logWarn("net: reaping idle connection " + std::to_string(id));
    connectionsReaped_.fetch_add(1, std::memory_order_relaxed);
    dropConnection(id);
  }
}

void TcpServer::Connection::send(MsgType type, const rpc::Encoder& payload) {
  queueFrame(type, payload.bytes().data(), payload.size());
}

void TcpServer::Connection::sendError(ErrorCode code,
                                      const std::string& message) {
  rpc::Encoder enc;
  enc.putU32(static_cast<std::uint32_t>(code));
  enc.putString(message);
  queueFrame(MsgType::kError, enc.bytes().data(), enc.size());
}

void TcpServer::Connection::queueFrame(MsgType type,
                                       const std::uint8_t* payload,
                                       std::size_t size) {
  const std::size_t queued = outbound_.size() - outboundHead_;
  if (server_.maxOutboundBytes_ != 0 &&
      queued + kFrameHeaderBytes + size > server_.maxOutboundBytes_) {
    // The peer stopped draining its responses: dropping bounds memory
    // (the peer's decoder couldn't survive a truncated stream anyway).
    logWarn("net: dropping connection " + std::to_string(id_) +
            ": outbound buffer over cap");
    server_.connectionsOverflowed_.fetch_add(1, std::memory_order_relaxed);
    server_.dropConnection(id_);
    return;
  }
  if (!corked_ && queued == 0) {
    // Nothing buffered and no batch in progress: scatter-gather the
    // stack header and the payload out in one sendmsg, no copy of the
    // payload next to its header, no outbound_ traffic at all when
    // the socket takes the whole frame (the common case).
    std::uint8_t header[kFrameHeaderBytes];
    encodeFrameHeader(header, type, payload, size);
    iovec iov[2];
    iov[0] = {header, kFrameHeaderBytes};
    iov[1] = {const_cast<std::uint8_t*>(payload), size};
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = size > 0 ? 2 : 1;
    std::size_t sent = 0;
    for (;;) {
      const ssize_t n = sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (n >= 0) {
        lastActivity_ = monotonicSeconds();
        sent = static_cast<std::size_t>(n);
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      server_.dropConnection(id_);
      return;
    }
    const std::size_t total = kFrameHeaderBytes + size;
    if (sent < total) {  // buffer the unsent tail for writability
      if (sent < kFrameHeaderBytes) {
        outbound_.insert(outbound_.end(), header + sent,
                         header + kFrameHeaderBytes);
        outbound_.insert(outbound_.end(), payload, payload + size);
      } else {
        outbound_.insert(outbound_.end(),
                         payload + (sent - kFrameHeaderBytes),
                         payload + size);
      }
    }
    server_.updateWriteInterest(*this);
    return;
  }
  encodeFrameInto(outbound_, type, payload, size);
  if (!corked_) server_.flushOutbound(*this);
}

void TcpServer::Connection::close() {
  closing_ = true;
  server_.flushOutbound(*this);
}

}  // namespace asdf::net
