#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"

namespace asdf::net {
namespace {

void setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TcpServer::TcpServer(EventLoop& loop, std::uint16_t port) : loop_(loop) {
  listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) {
    throw NetError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    close(listenFd_);
    listenFd_ = -1;
    throw NetError("bind 127.0.0.1:" + std::to_string(port) + ": " + why);
  }
  if (listen(listenFd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    close(listenFd_);
    listenFd_ = -1;
    throw NetError("listen: " + why);
  }
  socklen_t len = sizeof(addr);
  getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  setNonBlocking(listenFd_);

  loop_.watchFd(listenFd_, /*wantRead=*/true, /*wantWrite=*/false,
                [this](int, std::uint32_t) { handleAccept(); });
}

TcpServer::~TcpServer() {
  if (reapTimer_ >= 0) loop_.cancelTimer(reapTimer_);
  for (auto& [id, conn] : connections_) {
    loop_.unwatchFd(conn->fd_);
    close(conn->fd_);
  }
  connections_.clear();
  if (listenFd_ >= 0) {
    loop_.unwatchFd(listenFd_);
    close(listenFd_);
  }
}

void TcpServer::handleAccept() {
  for (;;) {
    const int fd = accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; keep listening
    }
    setNonBlocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = nextConnId_++;
    auto conn = std::make_unique<Connection>(*this, fd, id);
    conn->lastActivity_ = monotonicSeconds();
    Connection* raw = conn.get();
    connections_.emplace(id, std::move(conn));
    loop_.watchFd(fd, /*wantRead=*/true, /*wantWrite=*/false,
                  [this, raw](int, std::uint32_t events) {
                    handleConnection(*raw, events);
                  });
  }
}

void TcpServer::handleConnection(Connection& conn, std::uint32_t events) {
  const std::uint64_t id = conn.id_;
  if (events & EventLoop::kClosed) {
    dropConnection(id);
    return;
  }
  if (events & EventLoop::kWritable) {
    flushOutbound(conn);
    if (connections_.find(id) == connections_.end()) return;
  }
  if ((events & EventLoop::kReadable) == 0) return;

  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = read(conn.fd_, buf, sizeof(buf));
    if (n > 0) {
      conn.lastActivity_ = monotonicSeconds();
      if (!conn.decoder_.feed(buf, static_cast<std::size_t>(n))) {
        // Malformed framing: the stream cannot be trusted past this
        // point. Count and drop; the loop (and every other
        // connection) keeps running.
        logWarn("net: dropping connection " + std::to_string(id) + ": " +
                frameErrorName(conn.decoder_.error()));
        ++connectionsRejected_;
        dropConnection(id);
        return;
      }
      Frame frame;
      while (conn.decoder_.next(frame)) {
        ++framesServed_;
        if (handler_) {
          try {
            handler_(conn, std::move(frame));
          } catch (const std::exception& e) {
            conn.sendError(ErrorCode::kInternal, e.what());
          }
        }
        // The handler may have closed the connection.
        if (connections_.find(id) == connections_.end()) return;
      }
      continue;
    }
    if (n == 0) {  // orderly peer close
      dropConnection(id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    dropConnection(id);
    return;
  }
}

void TcpServer::flushOutbound(Connection& conn) {
  while (!conn.outbound_.empty()) {
    const ssize_t n = send(conn.fd_, conn.outbound_.data(),
                           conn.outbound_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.lastActivity_ = monotonicSeconds();
      conn.outbound_.erase(conn.outbound_.begin(),
                           conn.outbound_.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    dropConnection(conn.id_);
    return;
  }
  if (conn.outbound_.empty()) {
    if (conn.closing_) {
      dropConnection(conn.id_);
      return;
    }
    loop_.modifyFd(conn.fd_, /*wantRead=*/true, /*wantWrite=*/false);
  } else {
    loop_.modifyFd(conn.fd_, /*wantRead=*/!conn.closing_,
                   /*wantWrite=*/true);
  }
}

void TcpServer::dropConnection(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  loop_.unwatchFd(it->second->fd_);
  close(it->second->fd_);
  connections_.erase(it);
}

void TcpServer::setIdleTimeout(double seconds) {
  idleTimeoutSeconds_ = seconds;
  if (reapTimer_ >= 0) {
    loop_.cancelTimer(reapTimer_);
    reapTimer_ = -1;
  }
  if (seconds > 0.0) armReapTimer();
}

void TcpServer::armReapTimer() {
  reapTimer_ = loop_.addTimer(std::max(0.05, idleTimeoutSeconds_ / 2.0),
                              [this] {
                                reapTimer_ = -1;
                                reapIdle();
                                if (idleTimeoutSeconds_ > 0.0) armReapTimer();
                              });
}

void TcpServer::reapIdle() {
  const double cutoff = monotonicSeconds() - idleTimeoutSeconds_;
  std::vector<std::uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (conn->lastActivity_ < cutoff) idle.push_back(id);
  }
  for (const std::uint64_t id : idle) {
    logWarn("net: reaping idle connection " + std::to_string(id));
    ++connectionsReaped_;
    dropConnection(id);
  }
}

void TcpServer::Connection::send(MsgType type, const rpc::Encoder& payload) {
  const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
  if (server_.maxOutboundBytes_ != 0 &&
      outbound_.size() + frame.size() > server_.maxOutboundBytes_) {
    // The peer stopped draining its responses: dropping bounds memory
    // (the peer's decoder couldn't survive a truncated stream anyway).
    logWarn("net: dropping connection " + std::to_string(id_) +
            ": outbound buffer over cap");
    ++server_.connectionsOverflowed_;
    server_.dropConnection(id_);
    return;
  }
  outbound_.insert(outbound_.end(), frame.begin(), frame.end());
  server_.flushOutbound(*this);
}

void TcpServer::Connection::sendError(ErrorCode code,
                                      const std::string& message) {
  const std::vector<std::uint8_t> frame = encodeErrorFrame(code, message);
  if (server_.maxOutboundBytes_ != 0 &&
      outbound_.size() + frame.size() > server_.maxOutboundBytes_) {
    logWarn("net: dropping connection " + std::to_string(id_) +
            ": outbound buffer over cap");
    ++server_.connectionsOverflowed_;
    server_.dropConnection(id_);
    return;
  }
  outbound_.insert(outbound_.end(), frame.begin(), frame.end());
  server_.flushOutbound(*this);
}

void TcpServer::Connection::close() {
  closing_ = true;
  server_.flushOutbound(*this);
}

}  // namespace asdf::net
