#include "net/chaos_proxy.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"

namespace asdf::net {
namespace {

void setNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// splitmix64 finalizer: the stateless per-byte decision hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t byteDecisionHash(std::uint64_t seed, std::uint64_t conn,
                               int dir, std::uint64_t offset) {
  return mix64(mix64(seed ^ conn * 0xD6E8FEB86659FD93ULL) ^
               (static_cast<std::uint64_t>(dir) + 1) * 0xCA5A826395121157ULL ^
               offset);
}

/// Closes a socket so the peer sees an RST, not an orderly FIN.
void closeWithReset(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  close(fd);
}

constexpr double kMinTimerSeconds = 0.001;

}  // namespace

const char* chaosEventKindName(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kPhaseEnter:
      return "phase";
    case ChaosEvent::Kind::kPartitionStart:
      return "partition-start";
    case ChaosEvent::Kind::kPartitionEnd:
      return "partition-end";
    case ChaosEvent::Kind::kAccept:
      return "accept";
    case ChaosEvent::Kind::kUpstreamFailed:
      return "upstream-failed";
    case ChaosEvent::Kind::kCorrupt:
      return "corrupt";
    case ChaosEvent::Kind::kReset:
      return "reset";
  }
  return "?";
}

std::string ChaosEvent::describe() const {
  return strformat("%s conn=%llu dir=%d offset=%llu phase=%d",
                   chaosEventKindName(kind),
                   static_cast<unsigned long long>(conn), dir,
                   static_cast<unsigned long long>(offset), phase);
}

/// One proxied connection: the accepted client socket plus the dialed
/// upstream socket, with an independent toxic pipeline per direction.
/// Direction 0 reads from the client and writes upstream; direction 1
/// the reverse. fd index: 0 = client, 1 = upstream.
struct ChaosProxy::Relay {
  struct Chunk {
    std::vector<std::uint8_t> data;
    std::size_t consumed = 0;
    double due = 0.0;  // earliest release (arrival + latency + jitter)
  };
  struct Dir {
    std::deque<Chunk> pending;            // read, not yet released
    std::size_t pendingBytes = 0;
    std::vector<std::uint8_t> outbound;   // released, awaiting the sink
    std::uint64_t readOffset = 0;         // stream offset for decisions
    double tokens = 0.0;                  // rate-limiter bucket
    double lastRefill = 0.0;
    int pumpTimer = -1;
    bool eof = false;       // source half-closed; drain then shut sink
    bool resetPending = false;  // reset toxic fired: RST once drained
    bool sinkShut = false;
    Rng jitterRng{1};       // timing only — never feeds the event log
  };

  std::uint64_t id = 0;
  int fd[2] = {-1, -1};
  bool watched[2] = {false, false};
  bool connecting = false;      // upstream dial in flight
  bool dialDeferred = false;    // blackhole held the dial back
  Dir dirs[2];
};

ChaosProxy::ChaosProxy(EventLoop& loop, ChaosOptions opts)
    : loop_(loop), opts_(std::move(opts)) {
  if (opts_.phases.empty()) opts_.phases.push_back(ChaosPhase{});

  listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) {
    throw NetError(std::string("chaos: socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.listenPort);
  if (bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listenFd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    close(listenFd_);
    listenFd_ = -1;
    throw NetError("chaos: bind 127.0.0.1:" +
                   std::to_string(opts_.listenPort) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  setNonBlocking(listenFd_);
  loop_.watchFd(listenFd_, /*wantRead=*/true, /*wantWrite=*/false,
                [this](int, std::uint32_t) { handleAccept(); });

  enterPhase(0);
}

ChaosProxy::~ChaosProxy() {
  if (phaseTimer_ >= 0) loop_.cancelTimer(phaseTimer_);
  while (!relays_.empty()) dropRelay(relays_.begin()->first, /*rst=*/false);
  if (listenFd_ >= 0) {
    loop_.unwatchFd(listenFd_);
    close(listenFd_);
  }
}

void ChaosProxy::logEvent(ChaosEvent ev) {
  std::lock_guard<std::mutex> lock(statsMutex_);
  events_.push_back(std::move(ev));
}

std::vector<ChaosEvent> ChaosProxy::events() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return events_;
}

long ChaosProxy::corruptedBytes() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return corruptedBytes_;
}

long ChaosProxy::resets() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return resets_;
}

long ChaosProxy::accepted() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return accepted_;
}

std::uint64_t ChaosProxy::relayedBytes(int dir) const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return relayed_[dir];
}

bool ChaosProxy::corruptsAt(std::uint64_t conn, int dir,
                            std::uint64_t offset, double perKb) const {
  if (perKb <= 0.0) return false;
  const std::uint64_t h = byteDecisionHash(opts_.seed, conn, dir, offset);
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return u < perKb / 1024.0;
}

std::string ChaosProxy::describeSchedule(std::uint64_t conns,
                                         std::uint64_t horizonBytes) const {
  std::string out = strformat("chaos seed=%llu phases=%zu\n",
                              static_cast<unsigned long long>(opts_.seed),
                              opts_.phases.size());
  for (std::size_t p = 0; p < opts_.phases.size(); ++p) {
    const ChaosPhase& ph = opts_.phases[p];
    auto tox = [](const ChaosToxics& t) {
      return strformat(
          "lat=%.4f jit=%.4f rate=%.0f slice=%zu coalesce=%zu "
          "corrupt=%.4f reset=%llu",
          t.latencySeconds, t.jitterSeconds, t.rateBytesPerSec, t.sliceBytes,
          t.coalesceBytes, t.corruptPerKb,
          static_cast<unsigned long long>(t.resetAfterBytes));
    };
    out += strformat("phase %zu @%.3fs blackhole=%d up[%s] down[%s]\n", p,
                     ph.startSeconds, ph.blackhole ? 1 : 0,
                     tox(ph.up).c_str(), tox(ph.down).c_str());
    for (std::uint64_t c = 1; c <= conns; ++c) {
      for (int d = 0; d < 2; ++d) {
        const ChaosToxics& t = d == 0 ? ph.up : ph.down;
        if (t.corruptPerKb <= 0.0) continue;
        out += strformat("  conn %llu dir %d corrupts:",
                         static_cast<unsigned long long>(c), d);
        for (std::uint64_t o = 0; o < horizonBytes; ++o) {
          if (corruptsAt(c, d, o, t.corruptPerKb)) {
            out += strformat(" %llu", static_cast<unsigned long long>(o));
          }
        }
        out += "\n";
      }
    }
  }
  return out;
}

void ChaosProxy::enterPhase(std::size_t index) {
  const bool wasBlackhole =
      phaseIndex_ < opts_.phases.size() && phase().blackhole;
  phaseIndex_ = index;
  ChaosEvent ev;
  ev.kind = ChaosEvent::Kind::kPhaseEnter;
  ev.phase = static_cast<int>(index);
  logEvent(ev);
  if (phase().blackhole && (!wasBlackhole || index == 0)) {
    ev.kind = ChaosEvent::Kind::kPartitionStart;
    logEvent(ev);
  } else if (!phase().blackhole && wasBlackhole) {
    ev.kind = ChaosEvent::Kind::kPartitionEnd;
    logEvent(ev);
  }
  // (Re)apply watch state: a partition pauses every read; leaving one
  // resumes reads, deferred dials and stalled pumps.
  resumeAll();
  scheduleNextPhase();
}

void ChaosProxy::scheduleNextPhase() {
  if (phaseIndex_ + 1 >= opts_.phases.size()) return;
  const double delay = std::max(
      0.0, opts_.phases[phaseIndex_ + 1].startSeconds -
               opts_.phases[phaseIndex_].startSeconds);
  const std::size_t next = phaseIndex_ + 1;
  phaseTimer_ = loop_.addTimer(delay, [this, next] {
    phaseTimer_ = -1;
    enterPhase(next);
  });
}

void ChaosProxy::handleAccept() {
  for (;;) {
    const int fd = accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient failure; keep listening
    }
    setNonBlocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto relay = std::make_unique<Relay>();
    Relay* raw = relay.get();
    raw->id = nextConnId_++;
    raw->fd[0] = fd;
    for (int d = 0; d < 2; ++d) {
      raw->dirs[d].jitterRng =
          Rng(mix64(opts_.seed ^ raw->id * 0xA24BAED4963EE407ULL ^
                    static_cast<std::uint64_t>(d)));
    }
    relays_.emplace(raw->id, std::move(relay));
    {
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++accepted_;
    }
    ChaosEvent ev;
    ev.kind = ChaosEvent::Kind::kAccept;
    ev.conn = raw->id;
    ev.phase = static_cast<int>(phaseIndex_);
    logEvent(ev);

    const std::uint64_t id = raw->id;
    loop_.watchFd(fd, /*wantRead=*/!phase().blackhole, /*wantWrite=*/false,
                  [this, id](int, std::uint32_t events) {
                    const auto it = relays_.find(id);
                    if (it != relays_.end()) {
                      handleClientEvents(*it->second, events);
                    }
                  });
    raw->watched[0] = true;

    if (phase().blackhole) {
      raw->dialDeferred = true;  // the partition also severs new dials
    } else {
      startUpstreamConnect(*raw);
    }
  }
}

void ChaosProxy::startUpstreamConnect(Relay& relay) {
  relay.dialDeferred = false;
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    dropRelay(relay.id, /*rst=*/true);
    return;
  }
  setNonBlocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.upstreamPort);
  if (inet_pton(AF_INET, opts_.upstreamHost.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    dropRelay(relay.id, /*rst=*/true);
    return;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    close(fd);
    ChaosEvent ev;
    ev.kind = ChaosEvent::Kind::kUpstreamFailed;
    ev.conn = relay.id;
    ev.phase = static_cast<int>(phaseIndex_);
    logEvent(ev);
    dropRelay(relay.id, /*rst=*/true);
    return;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  relay.fd[1] = fd;
  relay.connecting = rc < 0;
  const std::uint64_t id = relay.id;
  loop_.watchFd(fd, /*wantRead=*/!relay.connecting,
                /*wantWrite=*/relay.connecting,
                [this, id](int, std::uint32_t events) {
                  const auto it = relays_.find(id);
                  if (it != relays_.end()) {
                    handleUpstreamEvents(*it->second, events);
                  }
                });
  relay.watched[1] = true;
  if (!relay.connecting) pump(relay, 0);
}

void ChaosProxy::handleClientEvents(Relay& relay, std::uint32_t events) {
  if (events & EventLoop::kClosed) {
    dropRelay(relay.id, /*rst=*/false);
    return;
  }
  if (events & EventLoop::kWritable) pump(relay, 1);  // client is dir-1 sink
  if (relays_.find(relay.id) == relays_.end()) return;
  if (events & EventLoop::kReadable) readInto(relay, 0);
}

void ChaosProxy::handleUpstreamEvents(Relay& relay, std::uint32_t events) {
  if (relay.connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(relay.fd[1], SOL_SOCKET, SO_ERROR, &err, &len);
    if ((events & EventLoop::kClosed) || err != 0) {
      ChaosEvent ev;
      ev.kind = ChaosEvent::Kind::kUpstreamFailed;
      ev.conn = relay.id;
      ev.phase = static_cast<int>(phaseIndex_);
      logEvent(ev);
      dropRelay(relay.id, /*rst=*/true);
      return;
    }
    relay.connecting = false;
    loop_.modifyFd(relay.fd[1], /*wantRead=*/!phase().blackhole,
                   /*wantWrite=*/!relay.dirs[0].outbound.empty());
    pump(relay, 0);
    return;
  }
  if (events & EventLoop::kClosed) {
    dropRelay(relay.id, /*rst=*/false);
    return;
  }
  if (events & EventLoop::kWritable) pump(relay, 0);  // upstream is dir-0 sink
  if (relays_.find(relay.id) == relays_.end()) return;
  if (events & EventLoop::kReadable) readInto(relay, 1);
}

void ChaosProxy::readInto(Relay& relay, int dir) {
  if (phase().blackhole) return;  // partition: leave bytes in the kernel
  Relay::Dir& d = relay.dirs[dir];
  if (d.eof) return;
  if (d.pendingBytes + d.outbound.size() >= opts_.maxBufferedBytes) {
    return;  // backpressure: stop reading until the pipeline drains
  }
  const ChaosToxics& tox = dir == 0 ? phase().up : phase().down;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = read(relay.fd[dir], buf, sizeof(buf));
    if (n > 0) {
      std::size_t accept = static_cast<std::size_t>(n);
      bool resetNow = false;
      if (tox.resetAfterBytes > 0 &&
          d.readOffset + accept >= tox.resetAfterBytes) {
        accept = static_cast<std::size_t>(tox.resetAfterBytes - d.readOffset);
        resetNow = true;
      }
      for (std::size_t i = 0; i < accept; ++i) {
        if (corruptsAt(relay.id, dir, d.readOffset + i, tox.corruptPerKb)) {
          const std::uint64_t h =
              byteDecisionHash(opts_.seed, relay.id, dir, d.readOffset + i);
          buf[i] ^= static_cast<std::uint8_t>(1u << ((h >> 13) & 7));
          {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++corruptedBytes_;
          }
          ChaosEvent ev;
          ev.kind = ChaosEvent::Kind::kCorrupt;
          ev.conn = relay.id;
          ev.dir = dir;
          ev.offset = d.readOffset + i;
          ev.phase = static_cast<int>(phaseIndex_);
          logEvent(ev);
        }
      }
      if (accept > 0) {
        Relay::Chunk chunk;
        chunk.data.assign(buf, buf + accept);
        chunk.due = monotonicSeconds() + tox.latencySeconds;
        if (tox.jitterSeconds > 0.0) {
          chunk.due += d.jitterRng.uniform(-tox.jitterSeconds,
                                           tox.jitterSeconds);
        }
        d.readOffset += accept;
        d.pendingBytes += accept;
        d.pending.push_back(std::move(chunk));
      }
      if (resetNow) {
        // The decision is logged now (it is pure in the offset); the
        // teardown waits until every byte below the offset drained to
        // the sink, so the reset lands exactly where the log says.
        {
          std::lock_guard<std::mutex> lock(statsMutex_);
          ++resets_;
        }
        ChaosEvent ev;
        ev.kind = ChaosEvent::Kind::kReset;
        ev.conn = relay.id;
        ev.dir = dir;
        ev.offset = tox.resetAfterBytes;
        ev.phase = static_cast<int>(phaseIndex_);
        logEvent(ev);
        d.eof = true;  // never read past the reset offset
        d.resetPending = true;
        break;
      }
      if (d.pendingBytes + d.outbound.size() >= opts_.maxBufferedBytes) {
        break;  // stop reading; pump() resumes the watch when drained
      }
      continue;
    }
    if (n == 0) {
      d.eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    dropRelay(relay.id, /*rst=*/false);
    return;
  }
  pump(relay, dir);
}

void ChaosProxy::resetRelay(Relay& relay, int dir) {
  for (int d = 0; d < 2; ++d) {
    if (relay.dirs[d].pumpTimer >= 0) {
      loop_.cancelTimer(relay.dirs[d].pumpTimer);
    }
  }
  for (int side = 0; side < 2; ++side) {
    if (relay.fd[side] < 0) continue;
    if (relay.watched[side]) loop_.unwatchFd(relay.fd[side]);
    if (side == dir) {
      closeWithReset(relay.fd[side]);  // the offending source sees RST
    } else {
      close(relay.fd[side]);  // the sink got its bytes, then a FIN
    }
  }
  relays_.erase(relay.id);
}

void ChaosProxy::schedulePump(Relay& relay, int dir, double delaySeconds) {
  Relay::Dir& d = relay.dirs[dir];
  if (d.pumpTimer >= 0) return;  // one pending pump is enough
  const std::uint64_t id = relay.id;
  d.pumpTimer = loop_.addTimer(std::max(kMinTimerSeconds, delaySeconds),
                               [this, id, dir] {
                                 const auto it = relays_.find(id);
                                 if (it == relays_.end()) return;
                                 it->second->dirs[dir].pumpTimer = -1;
                                 pump(*it->second, dir);
                               });
}

/// Moves released bytes toward the sink: applies latency due times,
/// the token-bucket rate limit and slice/coalesce re-chunking, then
/// writes as much of the outbound buffer as the socket accepts.
void ChaosProxy::pump(Relay& relay, int dir) {
  if (phase().blackhole) return;  // resumeAll() restarts us
  Relay::Dir& d = relay.dirs[dir];
  const int sink = relay.fd[1 - dir];
  if (sink < 0 || relay.connecting || d.sinkShut) return;
  const ChaosToxics& tox = dir == 0 ? phase().up : phase().down;
  const double now = monotonicSeconds();

  if (tox.rateBytesPerSec > 0.0) {
    const double cap =
        std::max(1500.0, tox.rateBytesPerSec * 0.25);  // burst bound
    d.tokens = std::min(cap, d.tokens + (now - d.lastRefill) *
                                            tox.rateBytesPerSec);
  }
  d.lastRefill = now;

  // Release due chunks into the outbound buffer.
  while (!d.pending.empty()) {
    Relay::Chunk& front = d.pending.front();
    if (front.due > now) {
      schedulePump(relay, dir, front.due - now);
      break;
    }
    if (tox.coalesceBytes > 0 && !d.eof &&
        d.pendingBytes < tox.coalesceBytes) {
      break;  // hold until enough accumulates (or the source closes)
    }
    std::size_t n = front.data.size() - front.consumed;
    if (tox.sliceBytes > 0) n = std::min(n, tox.sliceBytes);
    if (tox.rateBytesPerSec > 0.0) {
      const std::size_t afford = static_cast<std::size_t>(d.tokens);
      if (afford == 0) {
        schedulePump(relay, dir, 1.0 / tox.rateBytesPerSec);
        break;
      }
      n = std::min(n, afford);
    }
    d.outbound.insert(d.outbound.end(), front.data.begin() + front.consumed,
                      front.data.begin() + front.consumed + n);
    front.consumed += n;
    d.pendingBytes -= n;
    if (tox.rateBytesPerSec > 0.0) d.tokens -= static_cast<double>(n);
    if (front.consumed == front.data.size()) d.pending.pop_front();
    if (tox.sliceBytes > 0 && !d.pending.empty()) {
      // Flush each slice separately so the peer actually sees split
      // segments, and space them out by a minimal timer.
      break;
    }
  }

  // Drain the outbound buffer into the sink.
  while (!d.outbound.empty()) {
    const ssize_t n =
        send(sink, d.outbound.data(), d.outbound.size(), MSG_NOSIGNAL);
    if (n > 0) {
      {
        std::lock_guard<std::mutex> lock(statsMutex_);
        relayed_[dir] += static_cast<std::uint64_t>(n);
      }
      d.outbound.erase(d.outbound.begin(), d.outbound.begin() + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    dropRelay(relay.id, /*rst=*/false);
    return;
  }

  if (tox.sliceBytes > 0 && !d.pending.empty() &&
      d.pending.front().due <= now) {
    schedulePump(relay, dir, kMinTimerSeconds);
  }

  // A pending reset fires once the bytes below its offset drained.
  if (d.resetPending && d.pending.empty() && d.outbound.empty()) {
    resetRelay(relay, dir);
    return;
  }

  // Half-close propagation: the source finished and the pipeline is
  // dry — pass the FIN on; tear down once both directions are done.
  if (d.eof && d.pending.empty() && d.outbound.empty() && !d.sinkShut) {
    d.sinkShut = true;
    shutdown(sink, SHUT_WR);
    const Relay::Dir& other = relay.dirs[1 - dir];
    if (other.eof && other.pending.empty() && other.outbound.empty()) {
      dropRelay(relay.id, /*rst=*/false);
      return;
    }
  }

  // Refresh watch interests: write interest on the sink while bytes
  // wait; read interest on the source unless backpressured.
  const bool sinkWantsWrite = !d.outbound.empty();
  const Relay::Dir& sinkDir = relay.dirs[1 - dir];
  const bool sinkWantsRead =
      !phase().blackhole && !sinkDir.eof &&
      sinkDir.pendingBytes + sinkDir.outbound.size() < opts_.maxBufferedBytes;
  if (relay.watched[1 - dir]) {
    loop_.modifyFd(sink, sinkWantsRead, sinkWantsWrite);
  }
  const int source = relay.fd[dir];
  if (source >= 0 && relay.watched[dir]) {
    const bool srcWantsRead =
        !phase().blackhole && !d.eof &&
        d.pendingBytes + d.outbound.size() < opts_.maxBufferedBytes;
    const bool srcWantsWrite = !relay.dirs[1 - dir].outbound.empty() &&
                               !(dir == 1 && relay.connecting);
    loop_.modifyFd(source, srcWantsRead, srcWantsWrite);
  }
}

void ChaosProxy::resumeAll() {
  const bool blackhole = phase().blackhole;
  // Iterate over ids: pump() may drop relays mid-walk.
  std::vector<std::uint64_t> ids;
  ids.reserve(relays_.size());
  for (const auto& [id, relay] : relays_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = relays_.find(id);
    if (it == relays_.end()) continue;
    Relay& relay = *it->second;
    if (blackhole) {
      for (int side = 0; side < 2; ++side) {
        if (relay.fd[side] >= 0 && relay.watched[side] &&
            !(side == 1 && relay.connecting)) {
          loop_.modifyFd(relay.fd[side], /*wantRead=*/false,
                         /*wantWrite=*/false);
        }
      }
      for (int d = 0; d < 2; ++d) {
        if (relay.dirs[d].pumpTimer >= 0) {
          loop_.cancelTimer(relay.dirs[d].pumpTimer);
          relay.dirs[d].pumpTimer = -1;
        }
      }
      continue;
    }
    if (relay.dialDeferred) startUpstreamConnect(relay);
    if (relays_.find(id) == relays_.end()) continue;
    pump(relay, 0);
    if (relays_.find(id) == relays_.end()) continue;
    pump(relay, 1);
  }
}

void ChaosProxy::dropRelay(std::uint64_t id, bool rst) {
  const auto it = relays_.find(id);
  if (it == relays_.end()) return;
  Relay& relay = *it->second;
  for (int d = 0; d < 2; ++d) {
    if (relay.dirs[d].pumpTimer >= 0) {
      loop_.cancelTimer(relay.dirs[d].pumpTimer);
    }
  }
  for (int side = 0; side < 2; ++side) {
    if (relay.fd[side] < 0) continue;
    if (relay.watched[side]) loop_.unwatchFd(relay.fd[side]);
    if (rst) {
      closeWithReset(relay.fd[side]);
    } else {
      close(relay.fd[side]);
    }
  }
  relays_.erase(it);
}

}  // namespace asdf::net
