// Non-blocking event loop for the live collection plane.
//
// One epoll instance multiplexes listening sockets, per-connection
// sockets and a wakeup eventfd; one-shot timers ride on the epoll
// timeout (min-heap of deadlines — no timerfd per timer). asdf_rpcd
// runs a single EventLoop thread, which is what makes the served
// cluster simulation deterministic: requests are handled in arrival
// order, never concurrently.
//
// Level-triggered, single-threaded by design. Only stop() and post()
// may be called from another thread (they signal the wakeup fd);
// everything else must run on the loop thread. post() is how the
// sharded plane hands accepted fds across shard loops without sharing
// any connection state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "common/error.h"

namespace asdf::net {

/// Thrown on socket/epoll layer failures (bind in use, epoll_ctl, …).
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

class EventLoop {
 public:
  /// Bitmask handed to fd callbacks.
  static constexpr std::uint32_t kReadable = 1u << 0;
  static constexpr std::uint32_t kWritable = 1u << 1;
  static constexpr std::uint32_t kClosed = 1u << 2;  // HUP / ERR

  using FdCallback = std::function<void(int fd, std::uint32_t events)>;
  using TimerCallback = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers a callback for readiness events on `fd`. The loop does
  /// not own the fd; unwatch before closing it.
  void watchFd(int fd, bool wantRead, bool wantWrite, FdCallback cb);
  void modifyFd(int fd, bool wantRead, bool wantWrite);
  void unwatchFd(int fd);

  /// One-shot timer `delaySeconds` from now; returns an id usable with
  /// cancelTimer.
  int addTimer(double delaySeconds, TimerCallback cb);
  void cancelTimer(int id);

  /// Waits up to `maxWaitSeconds` (forever when < 0) for readiness or
  /// a timer, dispatches everything due, and returns the number of
  /// callbacks run. Returns promptly on stop().
  int runOnce(double maxWaitSeconds);

  /// Dispatches until stop() is called.
  void run();

  /// Thread-safe: wakes the loop and makes run() return.
  void stop();

  /// Thread-safe: queues `task` to run on the loop thread during its
  /// next dispatch round and wakes the loop.
  void post(std::function<void()> task);

  bool stopped() const { return stopped_; }
  std::size_t watchedFds() const { return fds_.size(); }

 private:
  struct Timer {
    double dueMonotonic;
    std::uint64_t seq;
    int id;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.dueMonotonic != b.dueMonotonic) {
        return a.dueMonotonic > b.dueMonotonic;
      }
      return a.seq > b.seq;
    }
  };

  double monotonicSeconds() const;
  int dispatchDueTimers();
  int drainPostedTasks();

  int epollFd_ = -1;
  int wakeupFd_ = -1;
  std::map<int, FdCallback> fds_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timerQueue_;
  std::map<int, TimerCallback> timers_;  // id -> callback (empty = canceled)
  int nextTimerId_ = 1;
  std::uint64_t nextTimerSeq_ = 0;
  std::mutex tasksMutex_;
  std::vector<std::function<void()>> tasks_;  // guarded by tasksMutex_
  std::atomic<bool> stopped_{false};
};

}  // namespace asdf::net
