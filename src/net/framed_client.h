// Blocking framed-TCP request/response connection — the socket
// machinery shared by every client of the CRC-framed protocol
// (LiveTransport to asdf_rpcd, AggClient to asdf_aggd).
//
// Owns one socket: connect(), one call() per request/response
// exchange with a poll()-based deadline, disconnect-on-error (a
// length-prefixed stream cannot be resynchronized after corruption or
// a timeout). The socket is non-blocking throughout: the dial, the
// request write and the response read all respect the per-call
// deadline even when a throttled peer accepts bytes one at a time.
// Redials are gated by capped exponential backoff with seeded jitter
// so a dead daemon is never hammered in a hot loop. NOT thread-safe:
// the owner serializes calls, typically under its own mutex, and
// layers protocol handshakes on top.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "net/frame.h"

namespace asdf::net {

class FramedClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Per-attempt deadline covering request + response (and, on a
    /// fresh connection, the dial).
    double timeoutSeconds = 5.0;
    /// Peer name used in log messages ("asdf_rpcd", "asdf_aggd").
    std::string peerName = "daemon";
    /// Redial backoff: after the k-th consecutive failure the next
    /// dial is allowed only backoffBase * 2^k seconds later (capped,
    /// jittered), mirroring rpc::RpcPolicy's shape on the wall clock.
    double backoffBaseSeconds = 0.05;
    double backoffMaxSeconds = 2.0;
    double jitterFrac = 0.25;
    std::uint64_t backoffSeed = 1;
  };

  explicit FramedClient(Options opts);
  ~FramedClient();
  FramedClient(const FramedClient&) = delete;
  FramedClient& operator=(const FramedClient&) = delete;

  /// Establishes the TCP connection (no protocol handshake — the
  /// owner sends its hello through call()). True when already
  /// connected. False immediately — without touching the network —
  /// while a redial backoff window is open.
  bool connect();
  void disconnect();
  bool connected() const { return fd_ >= 0; }

  /// One request/response exchange. False on not-connected, timeout,
  /// disconnect, framing error (all drop the connection), or a kError
  /// response (logged; the connection stays usable — the peer
  /// replied). A successful exchange resets the redial backoff.
  bool call(MsgType request, const rpc::Encoder& payload, MsgType expected,
            Frame& response);

  /// Charges one failure to the redial backoff. Owners call this when
  /// a dial succeeded but the protocol handshake on top failed (e.g.
  /// connecting through a partition: SYN completes, bytes never do) —
  /// otherwise such peers would be redialed in a hot loop.
  void backoffFailure();

  /// Connections re-established after the first one (each is evidence
  /// the peer bounced).
  long reconnects() const { return reconnects_; }

  /// Dial attempts refused because the backoff window was still open.
  long suppressedDials() const { return suppressedDials_; }

 private:
  Options opts_;
  int fd_ = -1;
  FrameDecoder decoder_;
  bool everConnected_ = false;
  long reconnects_ = 0;
  long suppressedDials_ = 0;
  int failStreak_ = 0;
  double nextDialAllowed_ = 0.0;
  Rng backoffRng_;
};

}  // namespace asdf::net
