// Blocking framed-TCP request/response connection — the socket
// machinery shared by every client of the CRC-framed protocol
// (LiveTransport to asdf_rpcd, AggClient to asdf_aggd).
//
// Owns one socket: connect(), one call() per request/response
// exchange with a poll()-based deadline, disconnect-on-error (a
// length-prefixed stream cannot be resynchronized after corruption or
// a timeout). NOT thread-safe: the owner serializes calls, typically
// under its own mutex, and layers protocol handshakes on top.
#pragma once

#include <cstdint>
#include <string>

#include "net/frame.h"

namespace asdf::net {

class FramedClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Per-attempt deadline covering request + response.
    double timeoutSeconds = 5.0;
    /// Peer name used in log messages ("asdf_rpcd", "asdf_aggd").
    std::string peerName = "daemon";
  };

  explicit FramedClient(Options opts);
  ~FramedClient();
  FramedClient(const FramedClient&) = delete;
  FramedClient& operator=(const FramedClient&) = delete;

  /// Establishes the TCP connection (no protocol handshake — the
  /// owner sends its hello through call()). True when already
  /// connected.
  bool connect();
  void disconnect();
  bool connected() const { return fd_ >= 0; }

  /// One request/response exchange. False on not-connected, timeout,
  /// disconnect, framing error (all drop the connection), or a kError
  /// response (logged; the connection stays usable — the peer
  /// replied).
  bool call(MsgType request, const rpc::Encoder& payload, MsgType expected,
            Frame& response);

  /// Connections re-established after the first one (each is evidence
  /// the peer bounced).
  long reconnects() const { return reconnects_; }

 private:
  Options opts_;
  int fd_ = -1;
  FrameDecoder decoder_;
  bool everConnected_ = false;
  long reconnects_ = 0;
};

}  // namespace asdf::net
