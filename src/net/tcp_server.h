// Framed TCP server for collection daemons.
//
// Owns a loopback listening socket on an EventLoop, accepts any number
// of connections, runs a FrameDecoder per connection and hands every
// complete frame to one handler. Writes are non-blocking with a
// per-connection outbound buffer drained on writability.
//
// Hot-path shape (DESIGN.md §15): the steady-state request/response
// cycle performs zero heap allocations — the decoder indexes frames in
// place, one reused scratch Frame carries payloads to the handler, and
// responses encode straight into the connection's outbound buffer.
// While a read batch is being dispatched the connection is *corked*:
// every response queued by the handler accumulates and leaves in one
// send() when the batch ends, so a pipelining client costs one write
// syscall per batch instead of one per frame. Uncorked single
// responses go out via sendmsg scatter-gather (stack header + payload
// iovec) without ever copying the payload next to its header.
//
// Sharding hooks: TcpServerOptions can request SO_REUSEPORT (several
// shard servers bind the same port and the kernel spreads accepts), or
// no listener at all — connections then arrive via adoptFd(), handed
// across loops with EventLoop::post by an acceptor shard whose
// onAccept interceptor round-robins raw fds (the fallback when
// SO_REUSEPORT is unavailable). Each shard owns its connections
// outright; no lock is ever taken on the data path. Counters are
// relaxed atomics so a ShardGroup can sum them across live shards.
//
// Robustness contract: a connection that sends malformed framing (bad
// magic, version skew, oversized length, CRC mismatch) is counted and
// dropped — a corrupt length-prefixed stream cannot be resynchronized
// — and the server keeps serving everyone else. Handler exceptions are
// converted to kError frames, not crashes. Two resource bounds guard
// against hostile or wedged peers: an optional idle timeout reaps
// connections with no read/write progress (half-open and slowloris
// clients cannot pin resources forever), and an optional per-
// connection outbound cap drops peers that stop draining their
// responses instead of buffering without bound. All socket writes use
// MSG_NOSIGNAL — a peer closing mid-write is an EPIPE, never a
// process-killing SIGPIPE.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"

namespace asdf::net {

struct TcpServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral (when listening)
  /// SO_REUSEPORT on the listener so sibling shard servers can bind
  /// the same port.
  bool reusePort = false;
  /// false: no listener at all — connections arrive via adoptFd().
  bool listen = true;
};

class TcpServer {
 public:
  class Connection {
   public:
    Connection(TcpServer& server, int fd, std::uint64_t id)
        : server_(server), fd_(fd), id_(id) {}

    /// Queues one frame for delivery. Uncorked with an empty buffer:
    /// one sendmsg(header iovec + payload iovec); otherwise the frame
    /// is encoded in place onto the outbound buffer (corked frames all
    /// leave in one syscall when the read batch ends).
    void send(MsgType type, const rpc::Encoder& payload);
    void sendError(ErrorCode code, const std::string& message);
    /// Closes after the outbound buffer drains.
    void close();

    std::uint64_t id() const { return id_; }

   private:
    friend class TcpServer;
    void queueFrame(MsgType type, const std::uint8_t* payload,
                    std::size_t size);

    TcpServer& server_;
    int fd_;
    std::uint64_t id_;
    FrameDecoder decoder_;
    Frame scratch_;  // reused per-dispatch payload carrier
    std::vector<std::uint8_t> outbound_;
    std::size_t outboundHead_ = 0;  // drained prefix of outbound_
    bool corked_ = false;
    bool watchingRead_ = true;
    bool watchingWrite_ = false;
    bool closing_ = false;
    double lastActivity_ = 0.0;  // monotonic; read/write progress
  };

  /// Frame handler: called once per complete inbound frame, on the
  /// loop thread. The Frame is a reused scratch owned by the
  /// connection — copy out anything that must outlive the call.
  using FrameHandler = std::function<void(Connection&, const Frame&)>;

  /// Accept interceptor: offered every freshly accepted fd before the
  /// server builds a connection for it. Return true to take ownership
  /// (e.g. hand it to a sibling shard via EventLoop::post + adoptFd);
  /// false lets this server keep it.
  using AcceptInterceptor = std::function<bool(int fd)>;

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; see
  /// port()). Throws NetError on bind/listen failure.
  TcpServer(EventLoop& loop, std::uint16_t port);
  TcpServer(EventLoop& loop, const TcpServerOptions& options);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  void onFrame(FrameHandler handler) { handler_ = std::move(handler); }
  void onAccept(AcceptInterceptor cb) { acceptHook_ = std::move(cb); }

  /// Takes ownership of an established socket as a new connection.
  /// Must run on this server's loop thread (post() it across shards).
  void adoptFd(int fd);

  /// Reaps connections with no read/write progress for `seconds`
  /// (checked at half that interval on the loop). 0 disables (the
  /// default). Call from the loop thread before or while running.
  void setIdleTimeout(double seconds);

  /// Drops any connection whose outbound buffer would exceed `bytes`
  /// (a peer that stopped reading its responses). 0 = unbounded (the
  /// default).
  void setMaxOutboundBytes(std::size_t bytes) { maxOutboundBytes_ = bytes; }

  std::uint16_t port() const { return port_; }
  std::size_t connectionCount() const {
    return connectionCount_.load(std::memory_order_relaxed);
  }
  long framesServed() const {
    return framesServed_.load(std::memory_order_relaxed);
  }
  long connectionsRejected() const {
    return connectionsRejected_.load(std::memory_order_relaxed);
  }
  long connectionsReaped() const {
    return connectionsReaped_.load(std::memory_order_relaxed);
  }
  long connectionsOverflowed() const {
    return connectionsOverflowed_.load(std::memory_order_relaxed);
  }

 private:
  void handleAccept();
  void addConnection(int fd);
  void handleConnection(Connection& conn, std::uint32_t events);
  void dispatchDecoded(Connection& conn);
  void flushOutbound(Connection& conn);
  void updateWriteInterest(Connection& conn);
  void dropConnection(std::uint64_t id);
  void armReapTimer();
  void reapIdle();

  EventLoop& loop_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  FrameHandler handler_;
  AcceptInterceptor acceptHook_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t nextConnId_ = 1;
  // Relaxed atomics: bumped on the loop thread, summed cross-thread by
  // ShardGroup while shards are live.
  std::atomic<std::size_t> connectionCount_{0};
  std::atomic<long> framesServed_{0};
  std::atomic<long> connectionsRejected_{0};  // malformed framing
  std::atomic<long> connectionsReaped_{0};    // idled past the timeout
  std::atomic<long> connectionsOverflowed_{0};  // over-cap outbound
  double idleTimeoutSeconds_ = 0.0;
  std::size_t maxOutboundBytes_ = 0;
  int reapTimer_ = -1;
};

}  // namespace asdf::net
