// Framed TCP server for collection daemons.
//
// Owns a loopback listening socket on an EventLoop, accepts any number
// of connections, runs a FrameDecoder per connection and hands every
// complete frame to one handler. Writes are non-blocking with a
// per-connection outbound buffer drained on writability.
//
// Robustness contract: a connection that sends malformed framing (bad
// magic, version skew, oversized length, CRC mismatch) is counted and
// dropped — a corrupt length-prefixed stream cannot be resynchronized
// — and the server keeps serving everyone else. Handler exceptions are
// converted to kError frames, not crashes. Two resource bounds guard
// against hostile or wedged peers: an optional idle timeout reaps
// connections with no read/write progress (half-open and slowloris
// clients cannot pin resources forever), and an optional per-
// connection outbound cap drops peers that stop draining their
// responses instead of buffering without bound. All socket writes use
// MSG_NOSIGNAL — a peer closing mid-write is an EPIPE, never a
// process-killing SIGPIPE.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"

namespace asdf::net {

class TcpServer {
 public:
  class Connection {
   public:
    Connection(TcpServer& server, int fd, std::uint64_t id)
        : server_(server), fd_(fd), id_(id) {}

    /// Queues one frame for delivery (immediate write, remainder
    /// buffered until the socket drains).
    void send(MsgType type, const rpc::Encoder& payload);
    void sendError(ErrorCode code, const std::string& message);
    /// Closes after the outbound buffer drains.
    void close();

    std::uint64_t id() const { return id_; }

   private:
    friend class TcpServer;
    TcpServer& server_;
    int fd_;
    std::uint64_t id_;
    FrameDecoder decoder_;
    std::vector<std::uint8_t> outbound_;
    bool closing_ = false;
    double lastActivity_ = 0.0;  // monotonic; read/write progress
  };

  /// Frame handler: called once per complete inbound frame, on the
  /// loop thread.
  using FrameHandler = std::function<void(Connection&, Frame&&)>;

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral; see
  /// port()). Throws NetError on bind/listen failure.
  TcpServer(EventLoop& loop, std::uint16_t port);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  void onFrame(FrameHandler handler) { handler_ = std::move(handler); }

  /// Reaps connections with no read/write progress for `seconds`
  /// (checked at half that interval on the loop). 0 disables (the
  /// default). Call from the loop thread before or while running.
  void setIdleTimeout(double seconds);

  /// Drops any connection whose outbound buffer would exceed `bytes`
  /// (a peer that stopped reading its responses). 0 = unbounded (the
  /// default).
  void setMaxOutboundBytes(std::size_t bytes) { maxOutboundBytes_ = bytes; }

  std::uint16_t port() const { return port_; }
  std::size_t connectionCount() const { return connections_.size(); }
  long framesServed() const { return framesServed_; }
  long connectionsRejected() const { return connectionsRejected_; }
  long connectionsReaped() const { return connectionsReaped_; }
  long connectionsOverflowed() const { return connectionsOverflowed_; }

 private:
  void handleAccept();
  void handleConnection(Connection& conn, std::uint32_t events);
  void flushOutbound(Connection& conn);
  void dropConnection(std::uint64_t id);
  void armReapTimer();
  void reapIdle();

  EventLoop& loop_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  FrameHandler handler_;
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t nextConnId_ = 1;
  long framesServed_ = 0;
  long connectionsRejected_ = 0;  // dropped for malformed framing
  long connectionsReaped_ = 0;    // dropped for idling past the timeout
  long connectionsOverflowed_ = 0;  // dropped for an over-cap outbound
  double idleTimeoutSeconds_ = 0.0;
  std::size_t maxOutboundBytes_ = 0;
  int reapTimer_ = -1;
};

}  // namespace asdf::net
