// Client side of the live collection plane: a blocking framed-TCP
// connection to one asdf_rpcd daemon, implementing rpc::LiveCollector
// so rpc::RpcClient's retry / backoff / circuit-breaker / byte-
// accounting machinery works unchanged over real sockets.
//
// One socket carries every channel for every node (asdf_rpcd serves
// the whole monitored cluster). Each fetch is one request frame and
// one response frame, bounded by a poll()-based deadline; a timeout or
// a framing error fails the attempt and drops the socket, and the next
// attempt reconnects. Calls are serialized with an internal mutex so
// collectors running on a pool executor cannot interleave frames.
// The socket machinery itself lives in FramedClient, shared with the
// aggregation tier's AggClient.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "net/cluster_stats.h"
#include "net/framed_client.h"
#include "rpc/live_collector.h"

namespace asdf::net {

class LiveTransport final : public rpc::LiveCollector {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Per-attempt deadline covering connect + request + response.
    double timeoutSeconds = 5.0;
    /// Seeds the redial backoff jitter (see FramedClient::Options).
    std::uint64_t backoffSeed = 1;
  };

  /// Connects and handshakes (kHello / kHelloAck). Throws NetError when
  /// the daemon is unreachable or speaks a different protocol version.
  explicit LiveTransport(const Options& opts);
  ~LiveTransport() override;
  LiveTransport(const LiveTransport&) = delete;
  LiveTransport& operator=(const LiveTransport&) = delete;

  int slaves() const override { return slaves_; }
  std::uint64_t serverSeed() const { return serverSeed_; }
  const std::string& serverSource() const { return serverSource_; }

  bool fetchSadc(NodeId node, SimTime now, metrics::SadcSnapshot& out,
                 std::size_t& responseBytes) override;
  bool fetchTt(NodeId node, SimTime now, SimTime watermark,
               std::vector<hadooplog::StateSample>& out,
               std::size_t& responseBytes) override;
  bool fetchDn(NodeId node, SimTime now, SimTime watermark,
               std::vector<hadooplog::StateSample>& out,
               std::size_t& responseBytes) override;
  bool fetchStrace(NodeId node, SimTime now, syscalls::TraceSecond& out,
                   std::size_t& responseBytes) override;

  /// Advances the daemon's clock to `now` and fetches its cluster-side
  /// accounting (Table 3 / ground-truth fields for live harness runs).
  bool fetchStats(double now, ClusterStatsWire& out);

  /// Asks the daemon to exit (kShutdown); best-effort.
  void shutdownServer();

  /// Connections re-established after the constructor's initial one
  /// (each is a failed attempt's worth of evidence the daemon bounced).
  long reconnects() const { return client_.reconnects(); }

  /// Redials skipped because the backoff window was still open (the
  /// hot-loop protection working).
  long suppressedDials() const { return client_.suppressedDials(); }

 private:
  bool ensureConnectedLocked();
  bool handshakeLocked();

  std::mutex mutex_;
  FramedClient client_;
  int slaves_ = 0;
  std::uint64_t serverSeed_ = 0;
  std::string serverSource_;
};

}  // namespace asdf::net
