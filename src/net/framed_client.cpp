#include "net/framed_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>

#include "common/error.h"
#include "common/logging.h"

namespace asdf::net {
namespace {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int pollMillis(double remaining) {
  return static_cast<int>(std::max(1.0, remaining * 1000.0));
}

}  // namespace

FramedClient::FramedClient(Options opts)
    : opts_(std::move(opts)), backoffRng_(opts_.backoffSeed) {}

FramedClient::~FramedClient() { disconnect(); }

void FramedClient::disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

void FramedClient::backoffFailure() {
  const double backoff =
      std::min(opts_.backoffMaxSeconds,
               opts_.backoffBaseSeconds *
                   std::pow(2.0, std::min(failStreak_, 20)));
  const double jitter =
      1.0 + opts_.jitterFrac * (2.0 * backoffRng_.uniform() - 1.0);
  ++failStreak_;
  nextDialAllowed_ = monotonicSeconds() + backoff * jitter;
}

bool FramedClient::connect() {
  if (fd_ >= 0) return true;
  if (monotonicSeconds() < nextDialAllowed_) {
    ++suppressedDials_;
    return false;
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    backoffFailure();
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    backoffFailure();
    return false;
  }
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    close(fd);
    backoffFailure();
    return false;
  }
  if (rc < 0) {
    // Dial in flight: bound it by the per-call deadline.
    const double deadline = monotonicSeconds() + opts_.timeoutSeconds;
    for (;;) {
      const double remaining = deadline - monotonicSeconds();
      if (remaining <= 0) {
        close(fd);
        backoffFailure();
        return false;
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = poll(&pfd, 1, pollMillis(remaining));
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) {
        close(fd);
        backoffFailure();
        return false;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        close(fd);
        backoffFailure();
        return false;
      }
      break;
    }
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_ = FrameDecoder();
  if (everConnected_) ++reconnects_;
  everConnected_ = true;
  return true;
}

bool FramedClient::call(MsgType request, const rpc::Encoder& payload,
                        MsgType expected, Frame& response) {
  if (fd_ < 0) return false;
  const double deadline = monotonicSeconds() + opts_.timeoutSeconds;

  const std::vector<std::uint8_t> out = encodeFrame(request, payload);
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Throttled peer: wait for writability, never past the deadline.
      const double remaining = deadline - monotonicSeconds();
      if (remaining <= 0) {
        disconnect();
        return false;
      }
      pollfd pfd{fd_, POLLOUT, 0};
      const int ready = poll(&pfd, 1, pollMillis(remaining));
      if (ready < 0 && errno != EINTR) {
        disconnect();
        return false;
      }
      continue;  // deadline re-checked above
    }
    disconnect();
    return false;
  }

  for (;;) {
    Frame frame;
    if (decoder_.next(frame)) {
      if (frame.type == expected) {
        response = std::move(frame);
        failStreak_ = 0;  // a full exchange proves the peer healthy
        nextDialAllowed_ = 0.0;
        return true;
      }
      if (frame.type == MsgType::kError) {
        try {
          rpc::Decoder dec(frame.payload);
          const std::uint32_t code = dec.getU32();
          logWarn("net: " + opts_.peerName + " error " +
                  std::to_string(code) + ": " + dec.getString());
        } catch (const RpcError&) {
        }
        return false;  // connection stays usable: the peer replied
      }
      // Unexpected type (e.g. a stale response after a timeout): a
      // request/response stream this far out of step cannot be
      // trusted — resync by reconnecting.
      disconnect();
      return false;
    }

    const double remaining = deadline - monotonicSeconds();
    if (remaining <= 0) {
      disconnect();  // a late response would desync the stream
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, pollMillis(remaining));
    if (ready < 0) {
      if (errno == EINTR) continue;
      disconnect();
      return false;
    }
    if (ready == 0) continue;  // deadline re-checked above

    std::uint8_t buf[65536];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      if (!decoder_.feed(buf, static_cast<std::size_t>(n))) {
        logWarn("net: malformed frame from " + opts_.peerName + ": " +
                frameErrorName(decoder_.error()));
        disconnect();
        return false;
      }
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    disconnect();  // peer closed or hard error
    return false;
  }
}

}  // namespace asdf::net
