#include "net/framed_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "common/error.h"
#include "common/logging.h"

namespace asdf::net {
namespace {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FramedClient::FramedClient(Options opts) : opts_(std::move(opts)) {}

FramedClient::~FramedClient() { disconnect(); }

void FramedClient::disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

bool FramedClient::connect() {
  if (fd_ >= 0) return true;
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return false;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_ = FrameDecoder();
  if (everConnected_) ++reconnects_;
  everConnected_ = true;
  return true;
}

bool FramedClient::call(MsgType request, const rpc::Encoder& payload,
                        MsgType expected, Frame& response) {
  if (fd_ < 0) return false;
  const double deadline = monotonicSeconds() + opts_.timeoutSeconds;

  const std::vector<std::uint8_t> out = encodeFrame(request, payload);
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = write(fd_, out.data() + sent, out.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    disconnect();
    return false;
  }

  for (;;) {
    Frame frame;
    if (decoder_.next(frame)) {
      if (frame.type == expected) {
        response = std::move(frame);
        return true;
      }
      if (frame.type == MsgType::kError) {
        try {
          rpc::Decoder dec(frame.payload);
          const std::uint32_t code = dec.getU32();
          logWarn("net: " + opts_.peerName + " error " +
                  std::to_string(code) + ": " + dec.getString());
        } catch (const RpcError&) {
        }
        return false;  // connection stays usable: the peer replied
      }
      // Unexpected type (e.g. a stale response after a timeout): a
      // request/response stream this far out of step cannot be
      // trusted — resync by reconnecting.
      disconnect();
      return false;
    }

    const double remaining = deadline - monotonicSeconds();
    if (remaining <= 0) {
      disconnect();  // a late response would desync the stream
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready =
        poll(&pfd, 1, static_cast<int>(std::max(1.0, remaining * 1000.0)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      disconnect();
      return false;
    }
    if (ready == 0) continue;  // deadline re-checked above

    std::uint8_t buf[65536];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      if (!decoder_.feed(buf, static_cast<std::size_t>(n))) {
        logWarn("net: malformed frame from " + opts_.peerName + ": " +
                frameErrorName(decoder_.error()));
        disconnect();
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    disconnect();  // peer closed or hard error
    return false;
  }
}

}  // namespace asdf::net
