#include "net/live_transport.h"

#include "common/error.h"
#include "net/event_loop.h"
#include "rpc/payloads.h"

namespace asdf::net {
namespace {

FramedClient::Options clientOptions(const LiveTransport::Options& opts) {
  FramedClient::Options copts;
  copts.host = opts.host;
  copts.port = opts.port;
  copts.timeoutSeconds = opts.timeoutSeconds;
  copts.peerName = "asdf_rpcd";
  copts.backoffSeed = opts.backoffSeed;
  return copts;
}

}  // namespace

LiveTransport::LiveTransport(const Options& opts)
    : client_(clientOptions(opts)) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) {
    throw NetError("asdf_rpcd unreachable at " + opts.host + ":" +
                   std::to_string(opts.port));
  }
}

LiveTransport::~LiveTransport() {
  std::lock_guard<std::mutex> lock(mutex_);
  client_.disconnect();
}

bool LiveTransport::ensureConnectedLocked() {
  if (client_.connected()) return true;
  if (!client_.connect()) return false;
  if (!handshakeLocked()) {
    // The dial succeeded but the handshake did not (partitioned peer:
    // SYN completes, bytes never arrive) — charge the backoff so the
    // next call doesn't redial immediately.
    client_.disconnect();
    client_.backoffFailure();
    return false;
  }
  return true;
}

bool LiveTransport::handshakeLocked() {
  rpc::Encoder hello;
  hello.putU32(kProtocolVersion);
  hello.putString("asdf-fpt-core");
  Frame ack;
  if (!client_.call(MsgType::kHello, hello, MsgType::kHelloAck, ack)) {
    return false;
  }
  try {
    rpc::Decoder dec(ack.payload);
    const std::uint32_t version = dec.getU32();
    if (version != kProtocolVersion) return false;
    slaves_ = static_cast<int>(dec.getU32());
    serverSeed_ = static_cast<std::uint64_t>(dec.getI64());
    serverSource_ = dec.getString();
  } catch (const RpcError&) {
    return false;
  }
  return slaves_ >= 1;
}

bool LiveTransport::fetchSadc(NodeId node, SimTime now,
                              metrics::SadcSnapshot& out,
                              std::size_t& responseBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) return false;
  rpc::Encoder req;
  req.putU32(static_cast<std::uint32_t>(node));
  req.putDouble(now);
  Frame resp;
  if (!client_.call(MsgType::kFetchSadc, req, MsgType::kSadcData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = rpc::decodeSnapshot(dec);
  } catch (const RpcError&) {
    client_.disconnect();
    return false;
  }
  responseBytes = resp.payload.size();
  return true;
}

bool LiveTransport::fetchTt(NodeId node, SimTime now, SimTime watermark,
                            std::vector<hadooplog::StateSample>& out,
                            std::size_t& responseBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) return false;
  rpc::Encoder req;
  req.putU32(static_cast<std::uint32_t>(node));
  req.putDouble(now);
  req.putDouble(watermark);
  Frame resp;
  if (!client_.call(MsgType::kFetchTt, req, MsgType::kTtData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = rpc::decodeSamples(dec);
  } catch (const RpcError&) {
    client_.disconnect();
    return false;
  }
  responseBytes = resp.payload.size();
  return true;
}

bool LiveTransport::fetchDn(NodeId node, SimTime now, SimTime watermark,
                            std::vector<hadooplog::StateSample>& out,
                            std::size_t& responseBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) return false;
  rpc::Encoder req;
  req.putU32(static_cast<std::uint32_t>(node));
  req.putDouble(now);
  req.putDouble(watermark);
  Frame resp;
  if (!client_.call(MsgType::kFetchDn, req, MsgType::kDnData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = rpc::decodeSamples(dec);
  } catch (const RpcError&) {
    client_.disconnect();
    return false;
  }
  responseBytes = resp.payload.size();
  return true;
}

bool LiveTransport::fetchStrace(NodeId node, SimTime now,
                                syscalls::TraceSecond& out,
                                std::size_t& responseBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) return false;
  rpc::Encoder req;
  req.putU32(static_cast<std::uint32_t>(node));
  req.putDouble(now);
  Frame resp;
  if (!client_.call(MsgType::kFetchStrace, req, MsgType::kStraceData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = rpc::decodeTrace(dec);
  } catch (const RpcError&) {
    client_.disconnect();
    return false;
  }
  responseBytes = resp.payload.size();
  return true;
}

bool LiveTransport::fetchStats(double now, ClusterStatsWire& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) return false;
  rpc::Encoder req;
  req.putDouble(now);
  Frame resp;
  if (!client_.call(MsgType::kStats, req, MsgType::kStatsData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = decodeClusterStats(dec);
  } catch (const RpcError&) {
    client_.disconnect();
    return false;
  }
  return true;
}

void LiveTransport::shutdownServer() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) return;
  rpc::Encoder req;
  Frame resp;
  (void)client_.call(MsgType::kShutdown, req, MsgType::kShutdownAck, resp);
  client_.disconnect();
}

}  // namespace asdf::net
