#include "net/live_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.h"
#include "common/logging.h"
#include "net/event_loop.h"
#include "rpc/payloads.h"

namespace asdf::net {
namespace {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

LiveTransport::LiveTransport(const Options& opts) : opts_(opts) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) {
    throw NetError("asdf_rpcd unreachable at " + opts_.host + ":" +
                   std::to_string(opts_.port));
  }
}

LiveTransport::~LiveTransport() {
  std::lock_guard<std::mutex> lock(mutex_);
  disconnectLocked();
}

void LiveTransport::disconnectLocked() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

bool LiveTransport::ensureConnectedLocked() {
  if (fd_ >= 0) return true;
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return false;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return false;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  decoder_ = FrameDecoder();
  if (everConnected_) ++reconnects_;
  everConnected_ = true;
  if (!handshakeLocked()) {
    disconnectLocked();
    return false;
  }
  return true;
}

bool LiveTransport::handshakeLocked() {
  rpc::Encoder hello;
  hello.putU32(kProtocolVersion);
  hello.putString("asdf-fpt-core");
  Frame ack;
  if (!callLocked(MsgType::kHello, hello, MsgType::kHelloAck, ack)) {
    return false;
  }
  try {
    rpc::Decoder dec(ack.payload);
    const std::uint32_t version = dec.getU32();
    if (version != kProtocolVersion) return false;
    slaves_ = static_cast<int>(dec.getU32());
    serverSeed_ = static_cast<std::uint64_t>(dec.getI64());
    serverSource_ = dec.getString();
  } catch (const RpcError&) {
    return false;
  }
  return slaves_ >= 1;
}

bool LiveTransport::callLocked(MsgType request, const rpc::Encoder& payload,
                               MsgType expected, Frame& response) {
  if (!ensureConnectedLocked()) return false;
  const double deadline = monotonicSeconds() + opts_.timeoutSeconds;

  const std::vector<std::uint8_t> out = encodeFrame(request, payload);
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = write(fd_, out.data() + sent, out.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    disconnectLocked();
    return false;
  }

  for (;;) {
    Frame frame;
    if (decoder_.next(frame)) {
      if (frame.type == expected) {
        response = std::move(frame);
        return true;
      }
      if (frame.type == MsgType::kError) {
        try {
          rpc::Decoder dec(frame.payload);
          const std::uint32_t code = dec.getU32();
          logWarn("net: asdf_rpcd error " + std::to_string(code) + ": " +
                  dec.getString());
        } catch (const RpcError&) {
        }
        return false;  // connection stays usable: the daemon replied
      }
      // Unexpected type (e.g. a stale response after a timeout): a
      // request/response stream this far out of step cannot be
      // trusted — resync by reconnecting.
      disconnectLocked();
      return false;
    }

    const double remaining = deadline - monotonicSeconds();
    if (remaining <= 0) {
      disconnectLocked();  // a late response would desync the stream
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready =
        poll(&pfd, 1, static_cast<int>(std::max(1.0, remaining * 1000.0)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      disconnectLocked();
      return false;
    }
    if (ready == 0) continue;  // deadline re-checked above

    std::uint8_t buf[65536];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      if (!decoder_.feed(buf, static_cast<std::size_t>(n))) {
        logWarn(std::string("net: malformed frame from asdf_rpcd: ") +
                frameErrorName(decoder_.error()));
        disconnectLocked();
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    disconnectLocked();  // peer closed or hard error
    return false;
  }
}

bool LiveTransport::fetchSadc(NodeId node, SimTime now,
                              metrics::SadcSnapshot& out,
                              std::size_t& responseBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  rpc::Encoder req;
  req.putU32(static_cast<std::uint32_t>(node));
  req.putDouble(now);
  Frame resp;
  if (!callLocked(MsgType::kFetchSadc, req, MsgType::kSadcData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = rpc::decodeSnapshot(dec);
  } catch (const RpcError&) {
    disconnectLocked();
    return false;
  }
  responseBytes = resp.payload.size();
  return true;
}

bool LiveTransport::fetchTt(NodeId node, SimTime now, SimTime watermark,
                            std::vector<hadooplog::StateSample>& out,
                            std::size_t& responseBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  rpc::Encoder req;
  req.putU32(static_cast<std::uint32_t>(node));
  req.putDouble(now);
  req.putDouble(watermark);
  Frame resp;
  if (!callLocked(MsgType::kFetchTt, req, MsgType::kTtData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = rpc::decodeSamples(dec);
  } catch (const RpcError&) {
    disconnectLocked();
    return false;
  }
  responseBytes = resp.payload.size();
  return true;
}

bool LiveTransport::fetchDn(NodeId node, SimTime now, SimTime watermark,
                            std::vector<hadooplog::StateSample>& out,
                            std::size_t& responseBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  rpc::Encoder req;
  req.putU32(static_cast<std::uint32_t>(node));
  req.putDouble(now);
  req.putDouble(watermark);
  Frame resp;
  if (!callLocked(MsgType::kFetchDn, req, MsgType::kDnData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = rpc::decodeSamples(dec);
  } catch (const RpcError&) {
    disconnectLocked();
    return false;
  }
  responseBytes = resp.payload.size();
  return true;
}

bool LiveTransport::fetchStrace(NodeId node, SimTime now,
                                syscalls::TraceSecond& out,
                                std::size_t& responseBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  rpc::Encoder req;
  req.putU32(static_cast<std::uint32_t>(node));
  req.putDouble(now);
  Frame resp;
  if (!callLocked(MsgType::kFetchStrace, req, MsgType::kStraceData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = rpc::decodeTrace(dec);
  } catch (const RpcError&) {
    disconnectLocked();
    return false;
  }
  responseBytes = resp.payload.size();
  return true;
}

bool LiveTransport::fetchStats(double now, ClusterStatsWire& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  rpc::Encoder req;
  req.putDouble(now);
  Frame resp;
  if (!callLocked(MsgType::kStats, req, MsgType::kStatsData, resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    out = decodeClusterStats(dec);
  } catch (const RpcError&) {
    disconnectLocked();
    return false;
  }
  return true;
}

void LiveTransport::shutdownServer() {
  std::lock_guard<std::mutex> lock(mutex_);
  rpc::Encoder req;
  Frame resp;
  (void)callLocked(MsgType::kShutdown, req, MsgType::kShutdownAck, resp);
  disconnectLocked();
}

}  // namespace asdf::net
