#include "net/proc_source.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "hadooplog/states.h"
#include "metrics/catalog.h"

namespace asdf::net {
namespace {

// Canned per-second hadoop activity cycle replayed for the white-box
// channel in proc mode: (ttCounts[5], dnCounts[3]) repeating every
// kCycleLen seconds, phase-shifted per node.
constexpr int kCycleLen = 12;
constexpr double kTtCycle[kCycleLen][hadooplog::kTtStateCount] = {
    {2, 1, 1, 0, 0}, {2, 1, 1, 0, 0}, {3, 1, 0, 1, 0}, {3, 1, 0, 0, 1},
    {2, 2, 1, 0, 1}, {2, 2, 1, 1, 0}, {1, 2, 0, 1, 1}, {1, 1, 0, 0, 1},
    {2, 1, 1, 0, 0}, {3, 0, 0, 0, 0}, {2, 1, 1, 0, 0}, {1, 1, 0, 1, 0},
};
constexpr double kDnCycle[kCycleLen][hadooplog::kDnStateCount] = {
    {1, 1, 0}, {2, 1, 0}, {2, 0, 0}, {1, 1, 1}, {0, 2, 0}, {1, 2, 0},
    {2, 1, 0}, {1, 0, 1}, {1, 1, 0}, {0, 1, 0}, {1, 0, 0}, {2, 1, 0},
};

std::vector<hadooplog::StateSample> replayRows(NodeId node, SimTime watermark,
                                               long& cursor,
                                               bool taskTracker) {
  // Mirror the parsers' finalization lag: rows are final once the
  // watermark has moved 2 s past them.
  const long finalBefore = static_cast<long>(std::floor(watermark - 2.0));
  std::vector<hadooplog::StateSample> out;
  for (; cursor < finalBefore; ++cursor) {
    hadooplog::StateSample s;
    s.second = cursor;
    const int slot =
        static_cast<int>((cursor + node) % kCycleLen + kCycleLen) % kCycleLen;
    if (taskTracker) {
      s.counts.assign(std::begin(kTtCycle[slot]), std::end(kTtCycle[slot]));
    } else {
      s.counts.assign(std::begin(kDnCycle[slot]), std::end(kDnCycle[slot]));
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

ProcSource::ProcSource(int slaves, std::uint64_t seed) : slaves_(slaves) {
  last_ = readProcTotals();
  liveProc_ = last_.valid;
  if (!liveProc_) {
    logWarn("net: /proc not readable; serving synthetic counters");
  }
  for (NodeId node = 1; node <= slaves_; ++node) {
    rngs_.emplace(node, Rng(seed + 0x9E3779B97F4A7C15ULL *
                                       static_cast<std::uint64_t>(node)));
    walk_[node] = 20.0 + 5.0 * (node % 3);
    ttCursor_[node] = 0;
    dnCursor_[node] = 0;
  }
}

ProcSource::ProcTotals ProcSource::readProcTotals() const {
  ProcTotals t;
  {
    std::ifstream stat("/proc/stat");
    std::string line;
    while (std::getline(stat, line)) {
      std::istringstream iss(line);
      std::string key;
      iss >> key;
      if (key == "cpu") {
        iss >> t.cpuUser >> t.cpuNice >> t.cpuSystem >> t.cpuIdle >>
            t.cpuIowait;
        t.valid = true;
      } else if (key == "ctxt") {
        iss >> t.ctxt;
      } else if (key == "intr") {
        iss >> t.intr;
      } else if (key == "processes") {
        iss >> t.forks;
      }
    }
  }
  if (!t.valid) return t;
  std::ifstream dev("/proc/net/dev");
  std::string line;
  while (std::getline(dev, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = line.substr(0, colon);
    if (name.find("lo") != std::string::npos &&
        name.find("lo") + 2 >= name.size()) {
      continue;  // skip loopback
    }
    std::istringstream iss(line.substr(colon + 1));
    double rxBytes = 0, rxPkts = 0, skip = 0, txBytes = 0, txPkts = 0;
    iss >> rxBytes >> rxPkts;
    for (int i = 0; i < 6; ++i) iss >> skip;
    iss >> txBytes >> txPkts;
    t.rxBytes += rxBytes;
    t.rxPkts += rxPkts;
    t.txBytes += txBytes;
    t.txPkts += txPkts;
  }
  return t;
}

metrics::SadcSnapshot ProcSource::collect(NodeId node, SimTime now) {
  // Node 1 reports the real host when /proc is live; everyone else is
  // synthetic so peer comparison still has a population.
  if (liveProc_ && node == 1) return sampleLive(now);
  return sampleSynthetic(node, now);
}

metrics::SadcSnapshot ProcSource::sampleLive(SimTime now) {
  const ProcTotals cur = readProcTotals();
  metrics::SadcSnapshot snap;
  snap.time = now;
  snap.node.assign(metrics::kNodeMetricCount, 0.0);
  snap.nic.assign(metrics::kNicMetricCount, 0.0);
  if (!cur.valid) return lastLive_.node.empty() ? snap : lastLive_;

  const double elapsed =
      lastSampleTime_ == kNoTime ? 1.0 : std::max(1e-3, now - lastSampleTime_);
  const double dUser = std::max(0.0, cur.cpuUser - last_.cpuUser);
  const double dNice = std::max(0.0, cur.cpuNice - last_.cpuNice);
  const double dSys = std::max(0.0, cur.cpuSystem - last_.cpuSystem);
  const double dIdle = std::max(0.0, cur.cpuIdle - last_.cpuIdle);
  const double dIowait = std::max(0.0, cur.cpuIowait - last_.cpuIowait);
  const double total = dUser + dNice + dSys + dIdle + dIowait;
  auto& n = snap.node;
  if (total > 0) {
    n[metrics::kCpuUserPct] = 100.0 * dUser / total;
    n[metrics::kCpuNicePct] = 100.0 * dNice / total;
    n[metrics::kCpuSystemPct] = 100.0 * dSys / total;
    n[metrics::kCpuIowaitPct] = 100.0 * dIowait / total;
    n[metrics::kCpuIdlePct] = 100.0 * dIdle / total;
  }
  n[metrics::kCtxSwitchPerSec] = std::max(0.0, cur.ctxt - last_.ctxt) / elapsed;
  n[metrics::kIntrPerSec] = std::max(0.0, cur.intr - last_.intr) / elapsed;
  n[metrics::kForksPerSec] = std::max(0.0, cur.forks - last_.forks) / elapsed;

  {
    std::ifstream meminfo("/proc/meminfo");
    std::string line;
    double totalKb = 0, freeKb = 0, buffersKb = 0, cachedKb = 0;
    while (std::getline(meminfo, line)) {
      std::istringstream iss(line);
      std::string key;
      double value = 0;
      iss >> key >> value;
      if (key == "MemTotal:") totalKb = value;
      else if (key == "MemFree:") freeKb = value;
      else if (key == "Buffers:") buffersKb = value;
      else if (key == "Cached:") cachedKb = value;
    }
    n[metrics::kMemFreeKb] = freeKb;
    n[metrics::kMemUsedKb] = std::max(0.0, totalKb - freeKb);
    if (totalKb > 0) {
      n[metrics::kMemUsedPct] = 100.0 * (totalKb - freeKb) / totalKb;
    }
    n[metrics::kMemBuffersKb] = buffersKb;
    n[metrics::kMemCachedKb] = cachedKb;
  }
  {
    std::ifstream loadavg("/proc/loadavg");
    double l1 = 0, l5 = 0, l15 = 0;
    std::string runnable;
    loadavg >> l1 >> l5 >> l15 >> runnable;
    n[metrics::kLoadAvg1] = l1;
    n[metrics::kLoadAvg5] = l5;
    n[metrics::kLoadAvg15] = l15;
    const auto slash = runnable.find('/');
    if (slash != std::string::npos) {
      n[metrics::kRunQueueSize] = std::atof(runnable.c_str());
      n[metrics::kProcListSize] = std::atof(runnable.c_str() + slash + 1);
    }
  }

  const double rxPktRate =
      std::max(0.0, cur.rxPkts - last_.rxPkts) / elapsed;
  const double txPktRate =
      std::max(0.0, cur.txPkts - last_.txPkts) / elapsed;
  const double rxKbRate =
      std::max(0.0, cur.rxBytes - last_.rxBytes) / elapsed / 1024.0;
  const double txKbRate =
      std::max(0.0, cur.txBytes - last_.txBytes) / elapsed / 1024.0;
  n[metrics::kNetRxPktTotalPerSec] = rxPktRate;
  n[metrics::kNetTxPktTotalPerSec] = txPktRate;
  n[metrics::kNetRxKbTotalPerSec] = rxKbRate;
  n[metrics::kNetTxKbTotalPerSec] = txKbRate;
  auto& nic = snap.nic;
  nic[metrics::kNicRxPktPerSec] = rxPktRate;
  nic[metrics::kNicTxPktPerSec] = txPktRate;
  nic[metrics::kNicRxKbPerSec] = rxKbRate;
  nic[metrics::kNicTxKbPerSec] = txKbRate;
  nic[metrics::kNicSpeedMbps] = 1000.0;
  nic[metrics::kNicUtilPct] =
      std::min(100.0, (rxKbRate + txKbRate) * 8.0 / 1024.0 / 1000.0 * 100.0);

  snap.processes.emplace_back(
      "asdf_rpcd", std::vector<double>(metrics::kProcessMetricCount, 0.0));

  last_ = cur;
  lastSampleTime_ = now;
  lastLive_ = snap;
  return snap;
}

metrics::SadcSnapshot ProcSource::sampleSynthetic(NodeId node, SimTime now) {
  Rng& rng = rngs_.at(node);
  double& level = walk_[node];
  // Mean-reverting random walk around a per-node baseline load level.
  const double baseline = 20.0 + 5.0 * (node % 3);
  level += 0.2 * (baseline - level) + rng.gaussian(0.0, 2.0);
  level = std::min(95.0, std::max(2.0, level));

  metrics::SadcSnapshot snap;
  snap.time = now;
  snap.node.assign(metrics::kNodeMetricCount, 0.0);
  snap.nic.assign(metrics::kNicMetricCount, 0.0);
  auto& n = snap.node;
  const double user = level * 0.7;
  const double sys = level * 0.2;
  const double iowait = level * 0.1;
  n[metrics::kCpuUserPct] = user;
  n[metrics::kCpuSystemPct] = sys;
  n[metrics::kCpuIowaitPct] = iowait;
  n[metrics::kCpuIdlePct] = std::max(0.0, 100.0 - user - sys - iowait);
  n[metrics::kCtxSwitchPerSec] = 800.0 + 40.0 * level + rng.gaussian(0.0, 50.0);
  n[metrics::kIntrPerSec] = 400.0 + 20.0 * level + rng.gaussian(0.0, 30.0);
  n[metrics::kForksPerSec] = std::max(0.0, 2.0 + rng.gaussian(0.0, 1.0));
  n[metrics::kMemFreeKb] = 4.0e6 - 2.0e4 * level;
  n[metrics::kMemUsedKb] = 3.5e6 + 2.0e4 * level;
  n[metrics::kMemUsedPct] =
      100.0 * n[metrics::kMemUsedKb] /
      (n[metrics::kMemUsedKb] + n[metrics::kMemFreeKb]);
  n[metrics::kMemBuffersKb] = 1.2e5;
  n[metrics::kMemCachedKb] = 9.0e5;
  n[metrics::kRunQueueSize] = std::max(0.0, level / 25.0);
  n[metrics::kProcListSize] = 140.0 + (node % 5);
  n[metrics::kLoadAvg1] = level / 25.0;
  n[metrics::kLoadAvg5] = baseline / 25.0;
  n[metrics::kLoadAvg15] = baseline / 25.0;
  const double pktRate = 200.0 + 30.0 * level + rng.gaussian(0.0, 20.0);
  const double kbRate = pktRate * 1.2;
  n[metrics::kNetRxPktTotalPerSec] = pktRate;
  n[metrics::kNetTxPktTotalPerSec] = pktRate * 0.9;
  n[metrics::kNetRxKbTotalPerSec] = kbRate;
  n[metrics::kNetTxKbTotalPerSec] = kbRate * 0.9;
  auto& nic = snap.nic;
  nic[metrics::kNicRxPktPerSec] = pktRate;
  nic[metrics::kNicTxPktPerSec] = pktRate * 0.9;
  nic[metrics::kNicRxKbPerSec] = kbRate;
  nic[metrics::kNicTxKbPerSec] = kbRate * 0.9;
  nic[metrics::kNicSpeedMbps] = 1000.0;
  nic[metrics::kNicUtilPct] =
      std::min(100.0, kbRate * 1.9 * 8.0 / 1024.0 / 1000.0 * 100.0);
  snap.processes.emplace_back(
      "TaskTracker", std::vector<double>(metrics::kProcessMetricCount, 0.0));
  snap.processes.emplace_back(
      "DataNode", std::vector<double>(metrics::kProcessMetricCount, 0.0));
  return snap;
}

std::vector<hadooplog::StateSample> ProcSource::fetchTt(NodeId node,
                                                        SimTime watermark) {
  return replayRows(node, watermark, ttCursor_[node], /*taskTracker=*/true);
}

std::vector<hadooplog::StateSample> ProcSource::fetchDn(NodeId node,
                                                        SimTime watermark) {
  return replayRows(node, watermark, dnCursor_[node], /*taskTracker=*/false);
}

}  // namespace asdf::net
