// Deterministic socket-level fault injection for the live plane
// (DESIGN.md §13).
//
// ChaosProxy is an in-process TCP proxy on the existing EventLoop: it
// accepts connections on a loopback port and forwards bytes to a real
// daemon (asdf_rpcd / asdf_aggd) while applying a **seeded,
// deterministic schedule** of toxics, per direction:
//
//   latency + jitter     — each forwarded chunk is delivered after an
//                          added delay (jitter drawn from the seed)
//   rate throttle        — bytes leave at most rateBytesPerSec (the
//                          slowloris trickle)
//   slice / coalesce     — writes are re-chunked: split into at most
//                          sliceBytes segments, or held until
//                          coalesceBytes accumulate
//   byte corruption      — byte at stream offset o is flipped iff a
//                          hash of (seed, connection ordinal,
//                          direction, o) lands under corruptPerKb/1024
//   connection reset     — the connection is torn down with an RST
//                          once a direction has relayed
//                          resetAfterBytes bytes
//   blackhole / partition— while a phase with blackhole=true is
//                          active, nothing is read or forwarded in
//                          either direction and new upstream dials are
//                          deferred (peers see silence, then timeouts)
//
// Determinism contract: every chaos *decision* (which byte corrupts,
// where a reset fires, which phases exist) is a pure function of the
// seed, the connection's accept ordinal, the direction and the stream
// byte offset — never of wall-clock time or of how read() happened to
// chunk the stream. Two runs with the same seed and the same
// per-connection byte streams therefore produce the same event log;
// the phase timeline itself is config, logged up front. Only the added
// latency's realized arrival times vary run to run.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/event_loop.h"

namespace asdf::net {

/// One direction's toxic parameters. Default-constructed = identity
/// (forward untouched).
struct ChaosToxics {
  double latencySeconds = 0.0;   // added delay per forwarded chunk
  double jitterSeconds = 0.0;    // uniform +/- jitter on the delay
  double rateBytesPerSec = 0.0;  // 0 = unlimited
  std::size_t sliceBytes = 0;    // 0 = off: forward in <= slice chunks
  std::size_t coalesceBytes = 0; // 0 = off: hold until this many queue
  double corruptPerKb = 0.0;     // expected corrupted bytes per KiB
  std::uint64_t resetAfterBytes = 0;  // 0 = off: RST at this offset
};

/// One phase of the chaos schedule, entered `startSeconds` after the
/// proxy starts. Phases apply in order; the last one runs forever.
struct ChaosPhase {
  double startSeconds = 0.0;
  ChaosToxics up;    // client -> daemon
  ChaosToxics down;  // daemon -> client
  bool blackhole = false;  // partition window: nothing moves
};

struct ChaosOptions {
  std::uint16_t listenPort = 0;  // 0 = ephemeral, see ChaosProxy::port()
  std::string upstreamHost = "127.0.0.1";
  std::uint16_t upstreamPort = 0;
  std::uint64_t seed = 1;
  /// Empty = one identity phase (plain forwarding).
  std::vector<ChaosPhase> phases;
  /// Per-direction relay buffer bound; beyond it the proxy stops
  /// reading that side (backpressure, never unbounded growth).
  std::size_t maxBufferedBytes = 4u << 20;
};

/// One realized chaos event. Offsets and ordinals make the log
/// comparable across runs; no wall-clock fields on purpose.
struct ChaosEvent {
  enum class Kind : int {
    kPhaseEnter = 0,
    kPartitionStart = 1,
    kPartitionEnd = 2,
    kAccept = 3,
    kUpstreamFailed = 4,
    kCorrupt = 5,
    kReset = 6,
  };
  Kind kind = Kind::kPhaseEnter;
  std::uint64_t conn = 0;   // accept ordinal (1-based; 0 = proxy-level)
  int dir = -1;             // 0 = up (client->daemon), 1 = down, -1 n/a
  std::uint64_t offset = 0; // stream byte offset (corrupt/reset)
  int phase = 0;

  std::string describe() const;
  bool operator==(const ChaosEvent&) const = default;
};

class ChaosProxy {
 public:
  /// Binds 127.0.0.1:listenPort and schedules the phase timeline on
  /// `loop`. Throws NetError on bind failure. Everything but the
  /// counters/log accessors must run with the loop (construct before
  /// starting it, destroy after stopping it).
  ChaosProxy(EventLoop& loop, ChaosOptions opts);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  std::uint16_t port() const { return port_; }

  /// Thread-safe counters / log (mutex-guarded; callable mid-run).
  std::vector<ChaosEvent> events() const;
  long corruptedBytes() const;
  long resets() const;
  long accepted() const;
  /// Bytes relayed per direction (0 = up, 1 = down).
  std::uint64_t relayedBytes(int dir) const;

  /// The deterministic schedule description: phase timeline plus, for
  /// the first `conns` connection ordinals, every corruption offset
  /// below `horizonBytes` and the reset offset. A pure function of
  /// (options, seed) — two proxies built from the same options always
  /// agree. Usable as the reproducibility fingerprint of a run.
  std::string describeSchedule(std::uint64_t conns,
                               std::uint64_t horizonBytes) const;

 private:
  struct Relay;  // one proxied connection (client fd + upstream fd)

  void handleAccept();
  void enterPhase(std::size_t index);
  void scheduleNextPhase();
  const ChaosPhase& phase() const { return opts_.phases[phaseIndex_]; }

  // Relay plumbing (loop thread only).
  void startUpstreamConnect(Relay& relay);
  void handleClientEvents(Relay& relay, std::uint32_t events);
  void handleUpstreamEvents(Relay& relay, std::uint32_t events);
  void readInto(Relay& relay, int dir);
  void pump(Relay& relay, int dir);
  void schedulePump(Relay& relay, int dir, double delaySeconds);
  /// Reset-toxic teardown, once the bytes below the reset offset have
  /// drained: RST toward `dir`'s source, orderly FIN toward the sink.
  void resetRelay(Relay& relay, int dir);
  void dropRelay(std::uint64_t id, bool rst);
  void resumeAll();

  void logEvent(ChaosEvent ev);

  /// True iff the byte at `offset` of (conn, dir) corrupts under
  /// probability `perKb/1024` — the pure per-byte decision.
  bool corruptsAt(std::uint64_t conn, int dir, std::uint64_t offset,
                  double perKb) const;

  EventLoop& loop_;
  ChaosOptions opts_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::size_t phaseIndex_ = 0;
  int phaseTimer_ = -1;
  std::uint64_t nextConnId_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Relay>> relays_;

  mutable std::mutex statsMutex_;
  std::vector<ChaosEvent> events_;
  long corruptedBytes_ = 0;
  long resets_ = 0;
  long accepted_ = 0;
  std::uint64_t relayed_[2] = {0, 0};
};

const char* chaosEventKindName(ChaosEvent::Kind kind);

}  // namespace asdf::net
