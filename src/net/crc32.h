// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the frame
// integrity check of the live collection plane. Table-driven, no
// dependencies; the table is built once at first use.
#pragma once

#include <cstddef>
#include <cstdint>

namespace asdf::net {

/// CRC of a byte range, with the conventional ~0 pre/post conditioning
/// (matches zlib's crc32() output for the same input).
std::uint32_t crc32(const void* data, std::size_t size);

/// Incremental form: start from kCrc32Init, fold in ranges with
/// crc32Update, finish with crc32Final.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;
std::uint32_t crc32Update(std::uint32_t state, const void* data,
                          std::size_t size);
inline std::uint32_t crc32Final(std::uint32_t state) { return ~state; }

}  // namespace asdf::net
