// Root side of the aggregation tier: a blocking framed-TCP connection
// to one asdf_aggd, fetching published GroupSummary windows
// (DESIGN.md §12). Built on the same FramedClient machinery as
// LiveTransport; connects lazily so the root can start before its
// aggregators and survive one dying mid-run (fetches just fail until
// the peer is back — the tiered harness turns a failure streak into
// an all-unmonitorable group).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/framed_client.h"
#include "rpc/summary.h"

namespace asdf::net {

class AggClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    double timeoutSeconds = 5.0;
    /// Seeds the redial backoff jitter (see FramedClient::Options).
    std::uint64_t backoffSeed = 1;
  };

  explicit AggClient(const Options& opts);
  AggClient(const AggClient&) = delete;
  AggClient& operator=(const AggClient&) = delete;

  /// Members the aggregator serves (0 until the first handshake).
  int groupSize() const { return groupSize_; }
  std::uint64_t serverSeed() const { return serverSeed_; }

  /// One attempt: every window with time > since, in publication
  /// order. On success sets `responseBytes` to the marshalled response
  /// payload size (tier-2 Table 4 accounting). False on connection
  /// failure, timeout, or a malformed response.
  bool fetchSummary(rpc::SummaryChannel channel, double since,
                    std::vector<rpc::SummaryWindow>& out,
                    std::size_t& responseBytes);

  /// Asks the aggregator to exit (kShutdown); best-effort.
  void shutdownServer();

  long reconnects() const { return client_.reconnects(); }

  /// Redials skipped because the backoff window was still open.
  long suppressedDials() const { return client_.suppressedDials(); }

 private:
  bool ensureConnectedLocked();

  std::mutex mutex_;
  FramedClient client_;
  int groupSize_ = 0;
  std::uint64_t serverSeed_ = 0;
};

}  // namespace asdf::net
