#include "net/rpcd_server.h"

#include <algorithm>

#include "common/logging.h"
#include "net/cluster_stats.h"
#include "rpc/payloads.h"

namespace asdf::net {
namespace {

hadoop::HadoopParams hadoopParamsFor(const RpcdOptions& opts) {
  hadoop::HadoopParams p;
  p.slaveCount = opts.slaves;
  return p;
}

workload::GridMixParams gridmixParamsFor(const RpcdOptions& opts) {
  workload::GridMixParams g;
  g.mixChangeTime = opts.mixChangeTime;
  return g;
}

}  // namespace

RpcdServer::RpcdServer(const RpcdOptions& opts)
    : opts_(opts),
      group_(ShardGroupOptions{opts.port, opts.shards,
                               opts.preferReusePort}) {
  if (opts_.source == "sim") {
    // Seed derivations must match harness::runExperiment exactly: that
    // is what lets a live client observe the same cluster a
    // sim-transport run simulates in-process.
    engine_ = std::make_unique<sim::SimEngine>();
    cluster_ = std::make_unique<hadoop::Cluster>(
        hadoopParamsFor(opts_), opts_.seed * 6151 + 3, *engine_);
    gridmix_ = std::make_unique<workload::GridMixGenerator>(
        *cluster_, gridmixParamsFor(opts_), opts_.seed * 7411 + 1);
    cluster_->start();
    gridmix_->start();
    hub_ = std::make_unique<rpc::RpcHub>(*cluster_, /*attachTime=*/0.0);
    injector_ = std::make_unique<faults::FaultInjector>(*cluster_,
                                                        opts_.fault);
    injector_->arm();
  } else {
    proc_ = std::make_unique<ProcSource>(opts_.slaves, opts_.seed);
  }
  for (int i = 0; i < group_.shardCount(); ++i) {
    group_.server(i).onFrame(
        [this](TcpServer::Connection& conn, const Frame& frame) {
          handleFrame(conn, frame);
        });
    if (opts_.idleTimeoutSeconds > 0.0) {
      group_.server(i).setIdleTimeout(opts_.idleTimeoutSeconds);
    }
  }
}

RpcdServer::~RpcdServer() = default;

void RpcdServer::run() { group_.runOnCaller(); }

void RpcdServer::stop() { group_.stop(); }

void RpcdServer::advanceTo(double now) {
  // Lazy advance: every event at or before `now` runs before the fetch
  // is answered — the same order an in-process run executes them in,
  // where cluster/gridmix/injector events sort before the module fetch
  // at an equal timestamp.
  if (engine_ != nullptr && now > engine_->now()) {
    engine_->runUntil(now);
  }
}

void RpcdServer::observeSample(rpc::CollectKind kind, NodeId node,
                               double now, double watermark,
                               const rpc::Encoder& enc) {
  if (opts_.observer == nullptr) return;
  rpc::CollectSample sample;
  sample.kind = kind;
  sample.node = node;
  sample.now = now;
  sample.watermark = watermark;
  sample.attempts = 1;
  sample.ok = true;
  sample.payload = enc.bytes().data();
  sample.payloadSize = enc.size();
  opts_.observer->onSample(sample);
}

ClusterStatsWire RpcdServer::snapshotStats(double now) {
  std::lock_guard<std::mutex> lock(stateMutex_);
  advanceTo(now);
  ClusterStatsWire stats;
  if (engine_ != nullptr) {
    stats.simNow = engine_->now();
    stats.faultEndedAt = injector_->endedAt();
    stats.sadcCpuSeconds = hub_->sadcCpuSeconds();
    stats.hadoopLogCpuSeconds = hub_->hadoopLogCpuSeconds();
    stats.straceCpuSeconds = hub_->straceCpuSeconds();
    stats.sadcMemoryBytes =
        static_cast<std::int64_t>(hub_->sadcMemoryBytes());
    stats.hadoopLogMemoryBytes =
        static_cast<std::int64_t>(hub_->hadoopLogMemoryBytes());
    stats.straceMemoryBytes =
        static_cast<std::int64_t>(hub_->straceMemoryBytes());
    stats.jobsSubmitted = cluster_->jobTracker().jobsSubmitted();
    stats.jobsCompleted = cluster_->jobTracker().jobsCompleted();
    stats.speculativeLaunches = cluster_->jobTracker().speculativeLaunches();
    for (int i = 1; i <= opts_.slaves; ++i) {
      stats.tasksCompleted += cluster_->taskTracker(i).completedTasks();
      stats.tasksFailed += cluster_->taskTracker(i).failedTasks();
    }
  } else {
    stats.simNow = now;
    stats.faultEndedAt = kNoTime;
  }
  return stats;
}

void RpcdServer::handleStats(TcpServer::Connection& conn, double now) {
  rpc::Encoder enc;
  encodeClusterStats(enc, snapshotStats(now));
  conn.send(MsgType::kStatsData, enc);
}

void RpcdServer::handleFrame(TcpServer::Connection& conn,
                             const Frame& frame) {
  rpc::Decoder dec(frame.payload);
  switch (frame.type) {
    case MsgType::kHello: {
      const std::uint32_t version = dec.getU32();
      if (version != kProtocolVersion) {
        conn.sendError(ErrorCode::kVersionSkew,
                       "server speaks version " +
                           std::to_string(kProtocolVersion));
        conn.close();
        return;
      }
      rpc::Encoder enc;
      enc.putU32(kProtocolVersion);
      enc.putU32(static_cast<std::uint32_t>(opts_.slaves));
      enc.putI64(static_cast<std::int64_t>(opts_.seed));
      enc.putString(opts_.source);
      conn.send(MsgType::kHelloAck, enc);
      return;
    }
    case MsgType::kFetchSadc: {
      const NodeId node = static_cast<NodeId>(dec.getU32());
      const double now = dec.getDouble();
      if (node < 1 || node > opts_.slaves) {
        conn.sendError(ErrorCode::kUnknownNode,
                       "node " + std::to_string(node));
        return;
      }
      // The state mutex serializes shard threads through the shared
      // source and the archive observer (DESIGN.md §15): responses
      // depend only on (node, now), so which shard's request advances
      // the simulation first does not change any payload.
      metrics::SadcSnapshot snap;
      rpc::Encoder enc;
      {
        std::lock_guard<std::mutex> lock(stateMutex_);
        if (engine_ != nullptr) {
          advanceTo(now);
          snap = hub_->sadc(node).fetch();
        } else {
          snap = proc_->collect(node, now);
        }
        rpc::encodeSnapshot(enc, snap);
        observeSample(rpc::CollectKind::kSadc, node, now, kNoTime, enc);
      }
      conn.send(MsgType::kSadcData, enc);
      return;
    }
    case MsgType::kFetchTt:
    case MsgType::kFetchDn: {
      const bool tt = frame.type == MsgType::kFetchTt;
      const NodeId node = static_cast<NodeId>(dec.getU32());
      const double now = dec.getDouble();
      const double watermark = dec.getDouble();
      if (node < 1 || node > opts_.slaves) {
        conn.sendError(ErrorCode::kUnknownNode,
                       "node " + std::to_string(node));
        return;
      }
      std::vector<hadooplog::StateSample> rows;
      rpc::Encoder enc;
      {
        std::lock_guard<std::mutex> lock(stateMutex_);
        if (engine_ != nullptr) {
          advanceTo(now);
          rows = tt ? hub_->hadoopLog(node).fetchTt(watermark)
                    : hub_->hadoopLog(node).fetchDn(watermark);
        } else {
          rows = tt ? proc_->fetchTt(node, watermark)
                    : proc_->fetchDn(node, watermark);
        }
        rpc::encodeSamples(enc, rows);
        observeSample(tt ? rpc::CollectKind::kTt : rpc::CollectKind::kDn,
                      node, now, watermark, enc);
      }
      conn.send(tt ? MsgType::kTtData : MsgType::kDnData, enc);
      return;
    }
    case MsgType::kFetchStrace: {
      const NodeId node = static_cast<NodeId>(dec.getU32());
      const double now = dec.getDouble();
      if (engine_ == nullptr) {
        conn.sendError(ErrorCode::kUnsupported,
                       "strace channel requires the sim source");
        return;
      }
      if (node < 1 || node > opts_.slaves) {
        conn.sendError(ErrorCode::kUnknownNode,
                       "node " + std::to_string(node));
        return;
      }
      rpc::Encoder enc;
      {
        std::lock_guard<std::mutex> lock(stateMutex_);
        advanceTo(now);
        const syscalls::TraceSecond trace = hub_->strace(node).fetch();
        rpc::encodeTrace(enc, trace);
        observeSample(rpc::CollectKind::kStrace, node, now, kNoTime, enc);
      }
      conn.send(MsgType::kStraceData, enc);
      return;
    }
    case MsgType::kStats: {
      handleStats(conn, dec.getDouble());
      return;
    }
    case MsgType::kShutdown: {
      rpc::Encoder enc;
      conn.send(MsgType::kShutdownAck, enc);
      conn.close();
      logInfo("asdf_rpcd: shutdown requested; exiting");
      group_.stop();
      return;
    }
    default:
      conn.sendError(ErrorCode::kBadRequest,
                     "unexpected message type " +
                         std::to_string(static_cast<int>(frame.type)));
      return;
  }
}

}  // namespace asdf::net
