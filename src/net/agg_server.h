// asdf_aggd's serving side: re-serves one region's analysis summaries
// upward to the root over the same CRC-framed protocol the collection
// plane speaks (DESIGN.md §12).
//
// The aggregator's pipeline thread publishes GroupSummary windows into
// a rpc::SummaryBoard; this server answers kFetchSummary requests from
// the board. Runs a ShardGroup like RpcdServer (--shards=1 is the
// classic single loop). The board is internally locked, so the
// pipeline thread and any number of shard loop threads never race —
// no extra state mutex is needed here.
#pragma once

#include <cstdint>
#include <string>

#include "net/shard_group.h"
#include "rpc/summary.h"

namespace asdf::net {

struct AggServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral, see AggServer::port()
  int groupSize = 0;       // members served (reported in kHelloAck)
  std::uint64_t seed = 0;
  /// Not owned; the pipeline publishing into it must outlive run().
  const rpc::SummaryBoard* board = nullptr;
  /// Reap connections with no read/write progress for this long
  /// (--idle-timeout; 0 = never — see TcpServer::setIdleTimeout).
  double idleTimeoutSeconds = 0.0;
  /// Network-plane shards (--shards; see ShardGroup).
  int shards = 1;
};

class AggServer {
 public:
  explicit AggServer(const AggServerOptions& opts);

  std::uint16_t port() const { return group_.port(); }
  int shardCount() const { return group_.shardCount(); }

  /// Serves until stop() or a kShutdown frame.
  void run();
  /// Thread-safe; makes run() return.
  void stop();

  long framesServed() const { return group_.framesServed(); }

 private:
  void handleFrame(TcpServer::Connection& conn, const Frame& frame);

  AggServerOptions opts_;
  ShardGroup group_;
};

}  // namespace asdf::net
