// asdf_aggd's serving side: re-serves one region's analysis summaries
// upward to the root over the same CRC-framed protocol the collection
// plane speaks (DESIGN.md §12).
//
// The aggregator's pipeline thread publishes GroupSummary windows into
// a rpc::SummaryBoard; this server answers kFetchSummary requests from
// the board. Single-threaded on an EventLoop, like RpcdServer — the
// board is internally locked, so the pipeline thread and the loop
// thread never race.
#pragma once

#include <cstdint>
#include <string>

#include "net/event_loop.h"
#include "net/tcp_server.h"
#include "rpc/summary.h"

namespace asdf::net {

struct AggServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral, see AggServer::port()
  int groupSize = 0;       // members served (reported in kHelloAck)
  std::uint64_t seed = 0;
  /// Not owned; the pipeline publishing into it must outlive run().
  const rpc::SummaryBoard* board = nullptr;
  /// Reap connections with no read/write progress for this long
  /// (--idle-timeout; 0 = never — see TcpServer::setIdleTimeout).
  double idleTimeoutSeconds = 0.0;
};

class AggServer {
 public:
  explicit AggServer(const AggServerOptions& opts);

  std::uint16_t port() const { return server_.port(); }

  /// Serves until stop() or a kShutdown frame.
  void run();
  /// Thread-safe; makes run() return.
  void stop();

  long framesServed() const { return server_.framesServed(); }

 private:
  void handleFrame(TcpServer::Connection& conn, Frame&& frame);

  AggServerOptions opts_;
  EventLoop loop_;
  TcpServer server_;
};

}  // namespace asdf::net
