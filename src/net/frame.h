// The live collection plane's wire framing (DESIGN.md §9).
//
// Every message between fpt-core and an asdf_rpcd daemon is one frame:
//
//   offset  size  field
//   0       4     magic 0x41534446 ("ASDF"), big-endian
//   4       2     protocol version (big-endian; currently 1)
//   6       2     message type (MsgType, big-endian)
//   8       4     payload length in bytes (big-endian, <= 16 MiB)
//   12      4     CRC-32 (IEEE) of the payload bytes
//   16      N     payload (rpc::Encoder / XDR-style marshalling)
//
// The decoder is incremental — feed() accepts whatever a read() call
// returned, frames surface via next() once complete — and defensive:
// a bad magic, an unsupported version, an oversized declared length or
// a CRC mismatch poisons the stream (Error != kNone) without throwing
// and without allocating attacker-controlled amounts of memory. A
// length-prefixed stream cannot be resynchronized after corruption, so
// the owner of a poisoned decoder must drop the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rpc/wire.h"

namespace asdf::net {

inline constexpr std::uint32_t kFrameMagic = 0x41534446u;  // "ASDF"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard cap on a frame payload. A 50-node cluster's largest legitimate
/// payload (a sadc snapshot with per-process vectors) is a few KB;
/// 16 MiB leaves three orders of magnitude of headroom while bounding
/// what a malicious length prefix can make the decoder buffer.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 16u << 20;

/// Message types of the collection protocol. Requests are sent by
/// fpt-core's LiveTransport, responses by asdf_rpcd.
enum class MsgType : std::uint16_t {
  kHello = 1,        // client version + greeting
  kHelloAck = 2,     // server version, slave count, seed, source kind
  kFetchSadc = 3,    // {node:u32, now:f64}
  kSadcData = 4,     // encoded SadcSnapshot
  kFetchTt = 5,      // {node:u32, now:f64, watermark:f64}
  kTtData = 6,       // encoded StateSample rows
  kFetchDn = 7,      // {node:u32, now:f64, watermark:f64}
  kDnData = 8,       // encoded StateSample rows
  kFetchStrace = 9,  // {node:u32, now:f64}
  kStraceData = 10,  // encoded TraceSecond
  kStats = 11,       // {now:f64} — advance to now, report cluster stats
  kStatsData = 12,   // encoded ClusterStats
  kShutdown = 13,    // ask the daemon to exit after replying
  kShutdownAck = 14,
  kError = 15,       // {code:u32, message:string}
  // Aggregation-tier protocol (root <-> asdf_aggd), DESIGN.md §12.
  kFetchSummary = 16,  // {channel:u32 (0=bb, 1=wb), since:f64}
  kSummaryData = 17,   // {count:u32, count x {time:f64, packed:f64vec}}
};

/// Application-level error codes carried by kError frames.
enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,       // malformed payload for the message type
  kUnknownNode = 2,      // node id outside the served cluster
  kVersionSkew = 3,      // client hello declared an unsupported version
  kUnsupported = 4,      // message type not served by this source
  kInternal = 5,
};

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Serializes one frame (header + payload) ready for write().
std::vector<std::uint8_t> encodeFrame(MsgType type,
                                      const std::uint8_t* payload,
                                      std::size_t size);
std::vector<std::uint8_t> encodeFrame(MsgType type, const rpc::Encoder& enc);

/// Appends one frame (header + payload) to `out` without allocating a
/// temporary — the server's batched outbound path encodes straight
/// into the per-connection send buffer.
void encodeFrameInto(std::vector<std::uint8_t>& out, MsgType type,
                     const std::uint8_t* payload, std::size_t size);

/// Writes just the 16-byte header for a payload into `header` (caller
/// provides kFrameHeaderBytes of space, typically on the stack); the
/// payload itself can then go out via writev scatter-gather without
/// ever being copied next to the header.
void encodeFrameHeader(std::uint8_t* header, MsgType type,
                       const std::uint8_t* payload, std::size_t size);

/// Convenience: an error frame with code + human-readable message.
std::vector<std::uint8_t> encodeErrorFrame(ErrorCode code,
                                           const std::string& message);

class FrameDecoder {
 public:
  enum class Error {
    kNone = 0,
    kBadMagic,
    kBadVersion,
    kOversized,  // declared payload length > kMaxFramePayloadBytes
    kBadCrc,
  };

  /// Appends raw stream bytes. Returns false once the stream is
  /// poisoned (error() != kNone); further feeds are ignored.
  bool feed(const std::uint8_t* data, std::size_t size);

  /// Pops the next complete frame; false when none is pending. The
  /// payload is copied with assign(), so a caller that reuses the same
  /// Frame object allocates nothing once its capacity has warmed up —
  /// validated frames live in the stream buffer until surfaced, as
  /// {type, offset, size} index entries rather than per-frame copies.
  bool next(Frame& out);

  Error error() const { return error_; }
  long framesDecoded() const { return framesDecoded_; }
  /// Bytes buffered but not yet surfaced via next().
  std::size_t pendingBytes() const { return buf_.size() - consumed_; }

 private:
  struct Pending {
    MsgType type;
    std::uint32_t offset;  // payload start within buf_
    std::uint32_t size;
  };

  bool tryAssemble();

  std::vector<std::uint8_t> buf_;
  std::vector<Pending> pending_;
  std::size_t nextPending_ = 0;  // index into pending_ of next frame
  std::size_t parsePos_ = 0;     // first unvalidated byte in buf_
  std::size_t consumed_ = 0;     // bytes already handed out via next()
  Error error_ = Error::kNone;
  long framesDecoded_ = 0;
};

const char* frameErrorName(FrameDecoder::Error e);

}  // namespace asdf::net
