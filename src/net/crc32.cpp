#include "net/crc32.h"

#include <array>

namespace asdf::net {
namespace {

std::array<std::uint32_t, 256> buildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = buildTable();
  return t;
}

}  // namespace

std::uint32_t crc32Update(std::uint32_t state, const void* data,
                          std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& t = table();
  for (std::size_t i = 0; i < size; ++i) {
    state = t[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32Final(crc32Update(kCrc32Init, data, size));
}

}  // namespace asdf::net
