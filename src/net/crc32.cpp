#include "net/crc32.h"

#include <array>
#include <cstring>

namespace asdf::net {
namespace {

// Slice-by-8 CRC-32 (IEEE 802.3 polynomial, reflected). Eight derived
// tables let the inner loop fold 8 input bytes per iteration instead
// of one — ~5x on the frame-sized payloads the live plane checksums
// twice per exchange (encode + validate). Table k maps a byte to its
// CRC contribution k+1 positions further from the end of an 8-byte
// block, so the eight lookups per block are independent; the result is
// byte-identical to the classic bytewise loop.
std::array<std::array<std::uint32_t, 256>, 8> buildTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

const std::array<std::array<std::uint32_t, 256>, 8>& tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> t = buildTables();
  return t;
}

inline std::uint32_t loadLe32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

}  // namespace

std::uint32_t crc32Update(std::uint32_t state, const void* data,
                          std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& t = tables();
  while (size >= 8) {
    const std::uint32_t lo = state ^ loadLe32(p);
    const std::uint32_t hi = loadLe32(p + 4);
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
            t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
            t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    state = t[0][(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32Final(crc32Update(kCrc32Init, data, size));
}

}  // namespace asdf::net
