#include "net/frame.h"

#include <cstring>

#include "common/bytes.h"
#include "net/crc32.h"

namespace asdf::net {

using bytes::putU16;
using bytes::putU32;
using bytes::readU16;
using bytes::readU32;

std::vector<std::uint8_t> encodeFrame(MsgType type,
                                      const std::uint8_t* payload,
                                      std::size_t size) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + size);
  encodeFrameInto(out, type, payload, size);
  return out;
}

void encodeFrameInto(std::vector<std::uint8_t>& out, MsgType type,
                     const std::uint8_t* payload, std::size_t size) {
  putU32(out, kFrameMagic);
  putU16(out, kProtocolVersion);
  putU16(out, static_cast<std::uint16_t>(type));
  putU32(out, static_cast<std::uint32_t>(size));
  putU32(out, crc32(payload, size));
  out.insert(out.end(), payload, payload + size);
}

void encodeFrameHeader(std::uint8_t* header, MsgType type,
                       const std::uint8_t* payload, std::size_t size) {
  bytes::storeU32(header, kFrameMagic);
  bytes::storeU16(header + 4, kProtocolVersion);
  bytes::storeU16(header + 6, static_cast<std::uint16_t>(type));
  bytes::storeU32(header + 8, static_cast<std::uint32_t>(size));
  bytes::storeU32(header + 12, crc32(payload, size));
}

std::vector<std::uint8_t> encodeFrame(MsgType type, const rpc::Encoder& enc) {
  return encodeFrame(type, enc.bytes().data(), enc.size());
}

std::vector<std::uint8_t> encodeErrorFrame(ErrorCode code,
                                           const std::string& message) {
  rpc::Encoder enc;
  enc.putU32(static_cast<std::uint32_t>(code));
  enc.putString(message);
  return encodeFrame(MsgType::kError, enc);
}

bool FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (error_ != Error::kNone) return false;
  buf_.insert(buf_.end(), data, data + size);
  while (tryAssemble()) {
  }
  return error_ == Error::kNone;
}

bool FrameDecoder::tryAssemble() {
  if (error_ != Error::kNone ||
      buf_.size() - parsePos_ < kFrameHeaderBytes) {
    return false;
  }
  const std::uint8_t* head = buf_.data() + parsePos_;
  // Validate the header before trusting — or allocating for — the
  // declared length.
  if (readU32(head) != kFrameMagic) {
    error_ = Error::kBadMagic;
    return false;
  }
  if (readU16(head + 4) != kProtocolVersion) {
    error_ = Error::kBadVersion;
    return false;
  }
  const std::uint32_t length = readU32(head + 8);
  if (length > kMaxFramePayloadBytes) {
    error_ = Error::kOversized;
    return false;
  }
  if (buf_.size() - parsePos_ < kFrameHeaderBytes + length) {
    return false;  // partial frame: wait for more bytes
  }
  const std::uint32_t expected = readU32(head + 12);
  if (crc32(head + kFrameHeaderBytes, length) != expected) {
    error_ = Error::kBadCrc;
    return false;
  }
  // Record an index entry instead of copying the payload out: the
  // bytes stay in buf_ until next() surfaces them, so a busy
  // connection assembles frames with zero allocations once buf_ and
  // pending_ have reached steady-state capacity.
  pending_.push_back(
      Pending{static_cast<MsgType>(readU16(head + 6)),
              static_cast<std::uint32_t>(parsePos_ + kFrameHeaderBytes),
              length});
  parsePos_ += kFrameHeaderBytes + length;
  ++framesDecoded_;
  return true;
}

bool FrameDecoder::next(Frame& out) {
  if (nextPending_ == pending_.size()) return false;
  const Pending& p = pending_[nextPending_++];
  out.type = p.type;
  out.payload.assign(buf_.begin() + p.offset,
                     buf_.begin() + p.offset + p.size);
  consumed_ = p.offset + p.size;
  if (nextPending_ == pending_.size()) {
    // Everything validated has been surfaced; drop the consumed prefix
    // (consumed_ == parsePos_ here) and keep only partial-frame bytes.
    pending_.clear();
    nextPending_ = 0;
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(consumed_));
    parsePos_ -= consumed_;
    consumed_ = 0;
  }
  return true;
}

const char* frameErrorName(FrameDecoder::Error e) {
  switch (e) {
    case FrameDecoder::Error::kNone:
      return "none";
    case FrameDecoder::Error::kBadMagic:
      return "bad-magic";
    case FrameDecoder::Error::kBadVersion:
      return "bad-version";
    case FrameDecoder::Error::kOversized:
      return "oversized";
    case FrameDecoder::Error::kBadCrc:
      return "bad-crc";
  }
  return "unknown";
}

}  // namespace asdf::net
