#include "net/frame.h"

#include <cstring>

#include "common/bytes.h"
#include "net/crc32.h"

namespace asdf::net {

using bytes::putU16;
using bytes::putU32;
using bytes::readU16;
using bytes::readU32;

std::vector<std::uint8_t> encodeFrame(MsgType type,
                                      const std::uint8_t* payload,
                                      std::size_t size) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + size);
  putU32(out, kFrameMagic);
  putU16(out, kProtocolVersion);
  putU16(out, static_cast<std::uint16_t>(type));
  putU32(out, static_cast<std::uint32_t>(size));
  putU32(out, crc32(payload, size));
  out.insert(out.end(), payload, payload + size);
  return out;
}

std::vector<std::uint8_t> encodeFrame(MsgType type, const rpc::Encoder& enc) {
  return encodeFrame(type, enc.bytes().data(), enc.size());
}

std::vector<std::uint8_t> encodeErrorFrame(ErrorCode code,
                                           const std::string& message) {
  rpc::Encoder enc;
  enc.putU32(static_cast<std::uint32_t>(code));
  enc.putString(message);
  return encodeFrame(MsgType::kError, enc);
}

bool FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (error_ != Error::kNone) return false;
  buf_.insert(buf_.end(), data, data + size);
  while (tryAssemble()) {
  }
  return error_ == Error::kNone;
}

bool FrameDecoder::tryAssemble() {
  if (error_ != Error::kNone || buf_.size() < kFrameHeaderBytes) {
    return false;
  }
  // Validate the header before trusting — or allocating for — the
  // declared length.
  if (readU32(buf_.data()) != kFrameMagic) {
    error_ = Error::kBadMagic;
    return false;
  }
  if (readU16(buf_.data() + 4) != kProtocolVersion) {
    error_ = Error::kBadVersion;
    return false;
  }
  const std::uint32_t length = readU32(buf_.data() + 8);
  if (length > kMaxFramePayloadBytes) {
    error_ = Error::kOversized;
    return false;
  }
  if (buf_.size() < kFrameHeaderBytes + length) {
    return false;  // partial frame: wait for more bytes
  }
  const std::uint32_t expected = readU32(buf_.data() + 12);
  if (crc32(buf_.data() + kFrameHeaderBytes, length) != expected) {
    error_ = Error::kBadCrc;
    return false;
  }
  Frame frame;
  frame.type = static_cast<MsgType>(readU16(buf_.data() + 6));
  frame.payload.assign(buf_.begin() + kFrameHeaderBytes,
                       buf_.begin() + kFrameHeaderBytes + length);
  ready_.push_back(std::move(frame));
  ++framesDecoded_;
  buf_.erase(buf_.begin(),
             buf_.begin() + kFrameHeaderBytes + length);
  return true;
}

bool FrameDecoder::next(Frame& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

const char* frameErrorName(FrameDecoder::Error e) {
  switch (e) {
    case FrameDecoder::Error::kNone:
      return "none";
    case FrameDecoder::Error::kBadMagic:
      return "bad-magic";
    case FrameDecoder::Error::kBadVersion:
      return "bad-version";
    case FrameDecoder::Error::kOversized:
      return "oversized";
    case FrameDecoder::Error::kBadCrc:
      return "bad-crc";
  }
  return "unknown";
}

}  // namespace asdf::net
