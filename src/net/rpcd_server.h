// asdf_rpcd: the live collection daemon (server side of DESIGN.md §9).
//
// One process answers every collection channel for every monitored
// node over the framed TCP protocol. Two data sources:
//
//   sim  — the daemon hosts the monitored-cluster simulation itself
//          (Cluster + GridMix + RpcHub + FaultInjector, seeded exactly
//          as harness::runExperiment seeds them) and advances it lazily
//          to the virtual `now` carried in each request. A live client
//          driving the same module schedule therefore reads byte-for-
//          byte the same data a sim-transport run reads, which is what
//          makes the sim/live alarm-equality contract testable.
//   proc — serves this host's real /proc counters (synthetic random
//          walk when /proc is unavailable) plus replayed hadoop-log
//          rows; the honest "online on a real machine" mode.
//
// Default (--shards=1): single-threaded on an EventLoop — requests
// are served in arrival order, never concurrently, so the hosted
// simulation needs no locks. With --shards=N the network plane is a
// ShardGroup (per-shard loops + SO_REUSEPORT listeners, DESIGN.md
// §15) and a state mutex serializes access to the shared source.
// Responses stay byte-identical either way: every request carries its
// own virtual `now`, the simulation is advanced lazily to it under
// the mutex, and what a fetch returns depends only on (channel, node,
// now, watermark) — not on which connection's request ran first.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "faults/faults.h"
#include "hadoop/cluster.h"
#include "net/cluster_stats.h"
#include "net/proc_source.h"
#include "net/shard_group.h"
#include "rpc/daemons.h"
#include "sim/engine.h"
#include "workload/gridmix.h"

namespace asdf::net {

struct RpcdOptions {
  std::uint16_t port = 0;        // 0 = ephemeral, see RpcdServer::port()
  int slaves = 16;
  std::uint64_t seed = 42;
  std::string source = "sim";    // "sim" | "proc"
  faults::FaultSpec fault;       // sim source only
  double mixChangeTime = -1.0;   // sim source only
  /// Flight-recorder tap (--archive-dir): every served data response
  /// is reported here. Not owned; must outlive the server.
  rpc::CollectionObserver* observer = nullptr;
  /// Reap connections with no read/write progress for this long
  /// (--idle-timeout; 0 = never — see TcpServer::setIdleTimeout).
  double idleTimeoutSeconds = 0.0;
  /// Network-plane shards (--shards; see ShardGroup). 1 = the classic
  /// single-loop daemon.
  int shards = 1;
  /// Test hook: force the acceptor-handoff fallback path.
  bool preferReusePort = true;
};

class RpcdServer {
 public:
  explicit RpcdServer(const RpcdOptions& opts);
  ~RpcdServer();

  std::uint16_t port() const { return group_.port(); }
  int shardCount() const { return group_.shardCount(); }
  bool usingReusePort() const { return group_.usingReusePort(); }

  /// Serves until stop() or a kShutdown frame. Call from the thread
  /// that owns the daemon (shards 2..N run on spawned threads).
  void run();

  /// Thread-safe; makes run() return.
  void stop();

  long framesServed() const { return group_.framesServed(); }
  long connectionsRejected() const { return group_.connectionsRejected(); }
  long connectionsReaped() const { return group_.connectionsReaped(); }

  /// Cluster-side accounting as of virtual time `now` (the payload the
  /// kStats request returns; the daemon main also stamps it into the
  /// archive's truth record on shutdown).
  ClusterStatsWire snapshotStats(double now);

 private:
  void handleFrame(TcpServer::Connection& conn, const Frame& frame);
  void advanceTo(double now);
  void handleStats(TcpServer::Connection& conn, double now);
  void observeSample(rpc::CollectKind kind, NodeId node, double now,
                     double watermark, const rpc::Encoder& enc);

  RpcdOptions opts_;
  ShardGroup group_;
  /// Serializes shard threads through the shared source (sim engine /
  /// proc walker) and the archive observer. Uncontended no-op cost at
  /// shards=1.
  std::mutex stateMutex_;

  // sim source (null in proc mode).
  std::unique_ptr<sim::SimEngine> engine_;
  std::unique_ptr<hadoop::Cluster> cluster_;
  std::unique_ptr<workload::GridMixGenerator> gridmix_;
  std::unique_ptr<rpc::RpcHub> hub_;
  std::unique_ptr<faults::FaultInjector> injector_;

  // proc source (null in sim mode).
  std::unique_ptr<ProcSource> proc_;
};

}  // namespace asdf::net
