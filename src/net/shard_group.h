// Per-core sharded network plane (DESIGN.md §15).
//
// A ShardGroup owns N independent {EventLoop, TcpServer} pairs that
// all serve the same port. Preferred mode: every shard's listener
// binds with SO_REUSEPORT and the kernel spreads incoming connections
// across them — no shared accept path at all. Fallback (when
// SO_REUSEPORT is unavailable, or forced for tests): only shard 0
// listens, and its accept interceptor hands raw fds round-robin to the
// other shards via EventLoop::post (which signals the target loop's
// eventfd) + TcpServer::adoptFd.
//
// Ownership rules: a connection belongs to exactly one shard for its
// whole life — its decoder, scratch frame and outbound buffer are
// plain members touched only by that shard's loop thread. The only
// cross-shard traffic is the one-time fd handoff (fallback mode) and
// the relaxed counter reads summed here. Whatever state the frame
// handler touches (e.g. the hosted simulation in RpcdServer) is the
// handler owner's problem; see the state mutex there.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/tcp_server.h"

namespace asdf::net {

struct ShardGroupOptions {
  std::uint16_t port = 0;  // 0 = ephemeral; all shards share the result
  int shards = 1;
  /// false forces the acceptor-handoff fallback even where
  /// SO_REUSEPORT works (exercised by tests).
  bool preferReusePort = true;
};

class ShardGroup {
 public:
  explicit ShardGroup(const ShardGroupOptions& options);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int shardCount() const { return static_cast<int>(servers_.size()); }
  EventLoop& loop(int i) { return *loops_[static_cast<std::size_t>(i)]; }
  TcpServer& server(int i) {
    return *servers_[static_cast<std::size_t>(i)];
  }
  std::uint16_t port() const { return port_; }
  bool usingReusePort() const { return reusePort_; }

  /// Runs shard 0's loop on the calling thread and shards 1..N-1 on
  /// spawned threads; returns — after stopping and joining everything
  /// — once stop() is called (from any thread, including a frame
  /// handler on any shard).
  void runOnCaller();

  /// Thread-safe and idempotent: stops every shard loop. Safe to call
  /// from a shard's own handler (it does not join).
  void stop();

  /// Counters summed across shards (relaxed; safe while running).
  long framesServed() const;
  long connectionsRejected() const;
  long connectionsReaped() const;
  long connectionsOverflowed() const;
  std::size_t connectionCount() const;

 private:
  void installHandoff();

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::unique_ptr<TcpServer>> servers_;
  std::vector<std::thread> threads_;  // shards 1..N-1, runOnCaller only
  std::uint16_t port_ = 0;
  bool reusePort_ = false;
  std::atomic<std::uint64_t> rr_{0};  // fallback round-robin cursor
};

}  // namespace asdf::net
