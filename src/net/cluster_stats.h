// Cluster-side accounting shipped over the kStats call (DESIGN.md §9).
//
// A live harness run has no in-process Cluster or RpcHub to interrogate
// for Table 3 daemon costs, fault end time, or cluster-health sanity
// counters; asdf_rpcd reports them instead. The struct round-trips
// through the same XDR-style codec as every other payload.
#pragma once

#include "rpc/wire.h"

namespace asdf::net {

struct ClusterStatsWire {
  double simNow = 0.0;          // daemon's virtual clock after advance
  double faultEndedAt = -1.0;   // kNoTime when still active / no fault
  double sadcCpuSeconds = 0.0;
  double hadoopLogCpuSeconds = 0.0;
  double straceCpuSeconds = 0.0;
  std::int64_t sadcMemoryBytes = 0;
  std::int64_t hadoopLogMemoryBytes = 0;
  std::int64_t straceMemoryBytes = 0;
  std::int64_t jobsSubmitted = 0;
  std::int64_t jobsCompleted = 0;
  std::int64_t tasksCompleted = 0;
  std::int64_t tasksFailed = 0;
  std::int64_t speculativeLaunches = 0;
};

inline void encodeClusterStats(rpc::Encoder& enc,
                               const ClusterStatsWire& s) {
  enc.putDouble(s.simNow);
  enc.putDouble(s.faultEndedAt);
  enc.putDouble(s.sadcCpuSeconds);
  enc.putDouble(s.hadoopLogCpuSeconds);
  enc.putDouble(s.straceCpuSeconds);
  enc.putI64(s.sadcMemoryBytes);
  enc.putI64(s.hadoopLogMemoryBytes);
  enc.putI64(s.straceMemoryBytes);
  enc.putI64(s.jobsSubmitted);
  enc.putI64(s.jobsCompleted);
  enc.putI64(s.tasksCompleted);
  enc.putI64(s.tasksFailed);
  enc.putI64(s.speculativeLaunches);
}

inline ClusterStatsWire decodeClusterStats(rpc::Decoder& dec) {
  ClusterStatsWire s;
  s.simNow = dec.getDouble();
  s.faultEndedAt = dec.getDouble();
  s.sadcCpuSeconds = dec.getDouble();
  s.hadoopLogCpuSeconds = dec.getDouble();
  s.straceCpuSeconds = dec.getDouble();
  s.sadcMemoryBytes = dec.getI64();
  s.hadoopLogMemoryBytes = dec.getI64();
  s.straceMemoryBytes = dec.getI64();
  s.jobsSubmitted = dec.getI64();
  s.jobsCompleted = dec.getI64();
  s.tasksCompleted = dec.getI64();
  s.tasksFailed = dec.getI64();
  s.speculativeLaunches = dec.getI64();
  return s;
}

}  // namespace asdf::net
