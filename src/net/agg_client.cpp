#include "net/agg_client.h"

#include "common/error.h"

namespace asdf::net {
namespace {

FramedClient::Options clientOptions(const AggClient::Options& opts) {
  FramedClient::Options copts;
  copts.host = opts.host;
  copts.port = opts.port;
  copts.timeoutSeconds = opts.timeoutSeconds;
  copts.peerName = "asdf_aggd";
  copts.backoffSeed = opts.backoffSeed;
  return copts;
}

}  // namespace

AggClient::AggClient(const Options& opts) : client_(clientOptions(opts)) {}

bool AggClient::ensureConnectedLocked() {
  if (client_.connected()) return true;
  if (!client_.connect()) return false;
  rpc::Encoder hello;
  hello.putU32(kProtocolVersion);
  hello.putString("asdf-root");
  Frame ack;
  if (!client_.call(MsgType::kHello, hello, MsgType::kHelloAck, ack)) {
    // Dial succeeded, handshake failed (partitioned or wedged peer) —
    // back off before the next redial.
    client_.disconnect();
    client_.backoffFailure();
    return false;
  }
  try {
    rpc::Decoder dec(ack.payload);
    const std::uint32_t version = dec.getU32();
    if (version != kProtocolVersion) {
      client_.disconnect();
      return false;
    }
    groupSize_ = static_cast<int>(dec.getU32());
    serverSeed_ = static_cast<std::uint64_t>(dec.getI64());
    (void)dec.getString();  // source kind ("agg")
  } catch (const RpcError&) {
    client_.disconnect();
    return false;
  }
  return groupSize_ >= 1;
}

bool AggClient::fetchSummary(rpc::SummaryChannel channel, double since,
                             std::vector<rpc::SummaryWindow>& out,
                             std::size_t& responseBytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) return false;
  rpc::Encoder req;
  req.putU32(static_cast<std::uint32_t>(channel));
  req.putDouble(since);
  Frame resp;
  if (!client_.call(MsgType::kFetchSummary, req, MsgType::kSummaryData,
                    resp)) {
    return false;
  }
  try {
    rpc::Decoder dec(resp.payload);
    const std::uint32_t count = dec.getU32();
    out.clear();
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      out.push_back(rpc::decodeSummaryWindow(dec));
    }
  } catch (const RpcError&) {
    client_.disconnect();
    return false;
  }
  responseBytes = resp.payload.size();
  return true;
}

void AggClient::shutdownServer() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensureConnectedLocked()) return;
  rpc::Encoder req;
  Frame resp;
  (void)client_.call(MsgType::kShutdown, req, MsgType::kShutdownAck, resp);
  client_.disconnect();
}

}  // namespace asdf::net
