// Real-host metric source for asdf_rpcd (--source=proc).
//
// The paper's sadc_rpcd wraps libsadc over the node's live /proc
// counters. This source does the honest subset of that on the machine
// asdf_rpcd runs on: it samples /proc/stat, /proc/meminfo,
// /proc/loadavg and /proc/net/dev once per collect and maps the deltas
// into the standard 64-node + 18-NIC sadc vector layout (metrics it
// cannot observe stay zero). On hosts without a readable /proc, a
// seeded synthetic generator produces a plausible random-walk load
// pattern instead, so the daemon still serves data anywhere.
//
// Hadoop state-vector rows have no live counterpart on an arbitrary
// host; they are replayed from a canned per-second trace (a looping
// map/reduce/HDFS activity cycle), which keeps the white-box channel
// exercised end to end.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hadooplog/parser.h"
#include "metrics/os_model.h"

namespace asdf::net {

class ProcSource {
 public:
  /// `slaves` logical nodes are served; on a real host they all map to
  /// this machine's counters (node 1 live, the rest phase-shifted
  /// synthetic so peer comparison has peers to compare).
  ProcSource(int slaves, std::uint64_t seed);

  /// True when /proc/stat was readable at construction.
  bool liveProc() const { return liveProc_; }

  /// One sadc collect for `node` at virtual time `now`.
  metrics::SadcSnapshot collect(NodeId node, SimTime now);

  /// Replayed TaskTracker / DataNode rows finalized up to `watermark`
  /// (exclusive of the trailing finalization lag, like the real
  /// parsers). Each call returns only rows not yet fetched.
  std::vector<hadooplog::StateSample> fetchTt(NodeId node, SimTime watermark);
  std::vector<hadooplog::StateSample> fetchDn(NodeId node, SimTime watermark);

 private:
  struct ProcTotals {
    double cpuUser = 0, cpuNice = 0, cpuSystem = 0, cpuIdle = 0,
           cpuIowait = 0;
    double ctxt = 0, intr = 0, forks = 0;
    double rxBytes = 0, txBytes = 0, rxPkts = 0, txPkts = 0;
    bool valid = false;
  };

  ProcTotals readProcTotals() const;
  metrics::SadcSnapshot sampleLive(SimTime now);
  metrics::SadcSnapshot sampleSynthetic(NodeId node, SimTime now);

  int slaves_;
  bool liveProc_ = false;
  ProcTotals last_;
  double lastSampleTime_ = kNoTime;
  metrics::SadcSnapshot lastLive_;
  std::map<NodeId, Rng> rngs_;
  std::map<NodeId, double> walk_;  // per-node synthetic load level
  std::map<NodeId, long> ttCursor_;
  std::map<NodeId, long> dnCursor_;
};

}  // namespace asdf::net
