#include "net/fanout_collector.h"

#include <cstdlib>

#include "common/error.h"
#include "net/event_loop.h"

namespace asdf::net {

void parseEndpoint(const std::string& endpoint, std::string& host,
                   std::uint16_t& port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    throw NetError("malformed endpoint '" + endpoint +
                   "' (expected host:port)");
  }
  host = endpoint.substr(0, colon);
  const long p = std::atol(endpoint.c_str() + colon + 1);
  if (p < 1 || p > 65535) {
    throw NetError("malformed endpoint '" + endpoint + "' (bad port)");
  }
  port = static_cast<std::uint16_t>(p);
}

FanoutCollector::FanoutCollector(const std::vector<std::string>& endpoints,
                                 NodeId firstNode, double timeoutSeconds,
                                 std::uint64_t backoffSeed)
    : firstNode_(firstNode) {
  if (endpoints.empty()) {
    throw NetError("fanout collector needs at least one leaf endpoint");
  }
  for (const std::string& endpoint : endpoints) {
    LiveTransport::Options opts;
    parseEndpoint(endpoint, opts.host, opts.port);
    opts.timeoutSeconds = timeoutSeconds;
    opts.backoffSeed =
        backoffSeed * 0x9E3779B97F4A7C15ULL + transports_.size() + 1;
    transports_.push_back(std::make_unique<LiveTransport>(opts));
  }
}

int FanoutCollector::slaves() const { return transports_[0]->slaves(); }

LiveTransport& FanoutCollector::transportFor(NodeId node) {
  const std::size_t offset =
      node >= firstNode_ ? static_cast<std::size_t>(node - firstNode_) : 0;
  return *transports_[offset % transports_.size()];
}

bool FanoutCollector::fetchSadc(NodeId node, SimTime now,
                                metrics::SadcSnapshot& out,
                                std::size_t& responseBytes) {
  return transportFor(node).fetchSadc(node, now, out, responseBytes);
}

bool FanoutCollector::fetchTt(NodeId node, SimTime now, SimTime watermark,
                              std::vector<hadooplog::StateSample>& out,
                              std::size_t& responseBytes) {
  return transportFor(node).fetchTt(node, now, watermark, out, responseBytes);
}

bool FanoutCollector::fetchDn(NodeId node, SimTime now, SimTime watermark,
                              std::vector<hadooplog::StateSample>& out,
                              std::size_t& responseBytes) {
  return transportFor(node).fetchDn(node, now, watermark, out, responseBytes);
}

bool FanoutCollector::fetchStrace(NodeId node, SimTime now,
                                  syscalls::TraceSecond& out,
                                  std::size_t& responseBytes) {
  return transportFor(node).fetchStrace(node, now, out, responseBytes);
}

}  // namespace asdf::net
