#include "net/agg_server.h"

#include "common/logging.h"

namespace asdf::net {

AggServer::AggServer(const AggServerOptions& opts)
    : opts_(opts),
      group_(ShardGroupOptions{opts.port, opts.shards,
                               /*preferReusePort=*/true}) {
  for (int i = 0; i < group_.shardCount(); ++i) {
    group_.server(i).onFrame(
        [this](TcpServer::Connection& conn, const Frame& frame) {
          handleFrame(conn, frame);
        });
    if (opts_.idleTimeoutSeconds > 0.0) {
      group_.server(i).setIdleTimeout(opts_.idleTimeoutSeconds);
    }
  }
}

void AggServer::run() { group_.runOnCaller(); }

void AggServer::stop() { group_.stop(); }

void AggServer::handleFrame(TcpServer::Connection& conn,
                            const Frame& frame) {
  rpc::Decoder dec(frame.payload);
  switch (frame.type) {
    case MsgType::kHello: {
      const std::uint32_t version = dec.getU32();
      if (version != kProtocolVersion) {
        conn.sendError(ErrorCode::kVersionSkew,
                       "server speaks version " +
                           std::to_string(kProtocolVersion));
        conn.close();
        return;
      }
      rpc::Encoder enc;
      enc.putU32(kProtocolVersion);
      enc.putU32(static_cast<std::uint32_t>(opts_.groupSize));
      enc.putI64(static_cast<std::int64_t>(opts_.seed));
      enc.putString("agg");
      conn.send(MsgType::kHelloAck, enc);
      return;
    }
    case MsgType::kFetchSummary: {
      const std::uint32_t channel = dec.getU32();
      const double since = dec.getDouble();
      if (channel >= static_cast<std::uint32_t>(rpc::kSummaryChannelCount)) {
        conn.sendError(ErrorCode::kBadRequest,
                       "unknown summary channel " + std::to_string(channel));
        return;
      }
      std::vector<rpc::SummaryWindow> windows;
      opts_.board->fetchSince(static_cast<rpc::SummaryChannel>(channel),
                              since, windows);
      rpc::Encoder enc;
      enc.putU32(static_cast<std::uint32_t>(windows.size()));
      for (const rpc::SummaryWindow& w : windows) {
        rpc::encodeSummaryWindow(enc, w);
      }
      conn.send(MsgType::kSummaryData, enc);
      return;
    }
    case MsgType::kShutdown: {
      rpc::Encoder enc;
      conn.send(MsgType::kShutdownAck, enc);
      conn.close();
      logInfo("asdf_aggd: shutdown requested; exiting");
      group_.stop();
      return;
    }
    default:
      conn.sendError(ErrorCode::kBadRequest,
                     "unexpected message type " +
                         std::to_string(static_cast<int>(frame.type)));
      return;
  }
}

}  // namespace asdf::net
