// Fault injection: the six reproduced problems of Table 2.
//
//   CPUHog      [Hadoop ML, Sep 13 2007] — a rogue CPU-intensive
//               process consuming ~70% of the node's CPU.
//   DiskHog     [Hadoop ML, Sep 26 2007] — a sequential disk workload
//               writing 20 GB to the filesystem.
//   PacketLoss  [HADOOP-2956] — 50% packet loss on the node's NIC.
//   HADOOP-1036 — maps on the node enter an infinite loop after an
//               unhandled exception (hang with CPU spin).
//   HADOOP-1152 — reduces on the node fail while copying map output
//               (rename of a deleted file).
//   HADOOP-2080 — reduces on the node hang at the sort/merge step on
//               a miscomputed checksum.
//
// Resource faults install tick hooks that compete for the node's
// resources like any real process; application faults flip the
// NodeFaults flags that task attempts consult. Every fault targets
// exactly one node, as in the paper ("we injected one fault on one
// node in each cluster").
#pragma once

#include <memory>
#include <vector>
#include <string>

#include "common/types.h"
#include "hadoop/cluster.h"

namespace asdf::faults {

enum class FaultType : int {
  kNone = 0,
  kCpuHog,
  kDiskHog,
  kPacketLoss,
  kHadoop1036,
  kHadoop1152,
  kHadoop2080,
};

const char* faultName(FaultType type);
/// Parses a fault name ("CPUHog", "HADOOP-1036", ...); kNone for
/// "none"/"". Throws ConfigError on unknown names.
FaultType faultFromName(const std::string& name);
/// All six injectable faults, in Table 2 order.
const std::vector<FaultType>& allFaults();

struct FaultSpec {
  FaultType type = FaultType::kNone;
  NodeId node = kInvalidNode;  // slave id (1-based)
  SimTime startTime = 0.0;
  SimTime endTime = kNoTime;  // kNoTime = active until the run ends

  // Tunables (paper defaults).
  double cpuHogUtilization = 0.70;  // fraction of the node's cores
  double diskHogBytes = 20.0e9;     // total bytes written
  double packetLossRate = 0.50;
};

/// Arms a fault on a cluster: activation/deactivation are scheduled on
/// the cluster's engine. Keep the injector alive for the whole run.
class FaultInjector {
 public:
  FaultInjector(hadoop::Cluster& cluster, FaultSpec spec);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules activation (and deactivation when endTime is set).
  void arm();

  bool active() const { return active_; }
  const FaultSpec& spec() const { return spec_; }

  /// Bytes the DiskHog has written so far (test visibility).
  double diskHogWritten() const { return diskWritten_; }

  /// When the fault stopped being active (kNoTime while active): the
  /// scheduled endTime, or the moment the DiskHog finished its write.
  SimTime endedAt() const { return endedAt_; }

 private:
  void activate();
  void deactivate();
  void installHogHook();

  hadoop::Cluster& cluster_;
  FaultSpec spec_;
  bool active_ = false;
  int hookId_ = -1;
  int cpuHandle_ = -1;
  int diskHandle_ = -1;
  double diskWritten_ = 0.0;
  double cpuDemand_ = 1.0;     // adaptive hog demand
  double lastAchieved_ = 0.0;  // utilization achieved last tick
  SimTime endedAt_ = kNoTime;
};

}  // namespace asdf::faults
