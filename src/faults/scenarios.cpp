#include "faults/scenarios.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/error.h"
#include "metrics/os_model.h"

namespace asdf::faults {
namespace {

std::string formatted(const char* fmt, double a, double b = 0.0,
                      double c = 0.0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b, c);
  return std::string(buf);
}

}  // namespace

const char* scenarioName(ScenarioClass cls) {
  switch (cls) {
    case ScenarioClass::kNone:
      return "none";
    case ScenarioClass::kRackPartition:
      return "RackPartition";
    case ScenarioClass::kCascadeHotspot:
      return "CascadeHotspot";
    case ScenarioClass::kNoisyNeighbor:
      return "NoisyNeighbor";
    case ScenarioClass::kGrayFailure:
      return "GrayFailure";
  }
  return "unknown";
}

ScenarioClass scenarioFromName(const std::string& name) {
  for (ScenarioClass c :
       {ScenarioClass::kNone, ScenarioClass::kRackPartition,
        ScenarioClass::kCascadeHotspot, ScenarioClass::kNoisyNeighbor,
        ScenarioClass::kGrayFailure}) {
    if (name == scenarioName(c)) return c;
  }
  if (name.empty()) return ScenarioClass::kNone;
  if (name == "partition") return ScenarioClass::kRackPartition;
  if (name == "cascade") return ScenarioClass::kCascadeHotspot;
  if (name == "noisy-neighbor") return ScenarioClass::kNoisyNeighbor;
  if (name == "gray") return ScenarioClass::kGrayFailure;
  throw ConfigError("unknown scenario name '" + name + "'");
}

const std::vector<ScenarioClass>& allScenarios() {
  static const std::vector<ScenarioClass> kAll = {
      ScenarioClass::kRackPartition,
      ScenarioClass::kCascadeHotspot,
      ScenarioClass::kNoisyNeighbor,
      ScenarioClass::kGrayFailure,
  };
  return kAll;
}

void validateScenario(const ScenarioSpec& spec,
                      const topology::ClusterLayout& layout) {
  if (spec.cls == ScenarioClass::kNone) return;
  const std::string name = scenarioName(spec.cls);
  if (spec.startTime < 0.0) {
    throw ConfigError("scenario " + name + ": startTime must be >= 0");
  }
  if (spec.endTime != kNoTime && spec.endTime <= spec.startTime) {
    throw ConfigError("scenario " + name + ": endTime must follow startTime");
  }
  const bool needsUplinks = spec.cls != ScenarioClass::kGrayFailure;
  if (needsUplinks && layout.flat()) {
    throw ConfigError("scenario " + name +
                      " contends on rack uplinks and needs racks >= 2 "
                      "(got a flat topology)");
  }
  if (spec.rack < 0 || spec.rack >= layout.racks()) {
    throw ConfigError("scenario " + name + ": rack " +
                      std::to_string(spec.rack) + " out of range [0, " +
                      std::to_string(layout.racks()) + ")");
  }
  if (spec.node < 1 || spec.node > layout.slaves()) {
    throw ConfigError("scenario " + name + ": node " +
                      std::to_string(spec.node) + " out of range [1, " +
                      std::to_string(layout.slaves()) + "]");
  }
  if (layout.rackOf(spec.node) != spec.rack) {
    throw ConfigError("scenario " + name + ": node " +
                      std::to_string(spec.node) + " is not in rack " +
                      std::to_string(spec.rack));
  }
  if (spec.cls == ScenarioClass::kRackPartition &&
      (spec.partitionResidualFactor < 0.0 ||
       spec.partitionResidualFactor >= 1.0)) {
    throw ConfigError("scenario " + name +
                      ": partitionResidualFactor must be in [0, 1)");
  }
  if (spec.cls == ScenarioClass::kNoisyNeighbor) {
    if (spec.noisyTenants < 1 ||
        spec.noisyTenants > layout.rackSize(spec.rack)) {
      throw ConfigError(
          "scenario " + name + ": noisyTenants must be in [1, " +
          std::to_string(layout.rackSize(spec.rack)) + "] for rack " +
          std::to_string(spec.rack));
    }
  }
}

ScenarioInjector::ScenarioInjector(hadoop::Cluster& cluster,
                                   ScenarioSpec spec)
    : cluster_(cluster),
      spec_(spec),
      rng_(spec.seed * 2654435761ULL + 1013904223ULL) {
  if (spec_.cls == ScenarioClass::kNone) return;
  const topology::ClusterLayout& layout = cluster_.layout();
  // Resolve placement defaults: the last rack (exercising ragged
  // layouts), and a rack's first node.
  if (spec_.rack < 0) {
    spec_.rack = spec_.node != kInvalidNode ? layout.rackOf(spec_.node)
                                            : layout.racks() - 1;
  }
  if (spec_.node == kInvalidNode && spec_.rack >= 0 &&
      spec_.rack < layout.racks()) {
    spec_.node = layout.hostId(spec_.rack, 0);
  }
  validateScenario(spec_, layout);
}

ScenarioInjector::~ScenarioInjector() {
  if (hookId_ >= 0) cluster_.removeTickHook(hookId_);
}

void ScenarioInjector::arm() {
  if (spec_.cls == ScenarioClass::kNone) return;
  cluster_.engine().scheduleAt(spec_.startTime, [this] { activate(); });
  if (spec_.endTime != kNoTime) {
    cluster_.engine().scheduleAt(spec_.endTime, [this] { deactivate(); });
  }
}

std::vector<int> ScenarioInjector::culpritIndices() const {
  std::vector<int> out;
  const topology::ClusterLayout& layout = cluster_.layout();
  switch (spec_.cls) {
    case ScenarioClass::kNone:
      break;
    case ScenarioClass::kRackPartition:
      for (NodeId id : layout.rackNodes(spec_.rack)) {
        out.push_back(static_cast<int>(id) - 1);
      }
      break;
    case ScenarioClass::kCascadeHotspot:
    case ScenarioClass::kGrayFailure:
      out.push_back(static_cast<int>(spec_.node) - 1);
      break;
    case ScenarioClass::kNoisyNeighbor: {
      // Same tenant selection as installNoisyHook: the rack's nodes,
      // rotated so spec.node leads, first noisyTenants of them.
      const std::vector<NodeId> rack = layout.rackNodes(spec_.rack);
      const auto at = std::find(rack.begin(), rack.end(), spec_.node);
      const std::size_t start =
          static_cast<std::size_t>(at - rack.begin());
      for (int i = 0; i < spec_.noisyTenants; ++i) {
        out.push_back(static_cast<int>(
                          rack[(start + static_cast<std::size_t>(i)) %
                               rack.size()]) -
                      1);
      }
      break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ScenarioInjector::logEvent(SimTime time, std::string what) {
  events_.push_back(ScenarioEvent{time, std::move(what)});
}

void ScenarioInjector::activate() {
  if (active_) return;
  active_ = true;
  const SimTime now = cluster_.engine().now();
  switch (spec_.cls) {
    case ScenarioClass::kNone:
      break;
    case ScenarioClass::kRackPartition: {
      topology::UplinkPlane* uplinks = cluster_.uplinks();
      assert(uplinks != nullptr);
      uplinks->scaleRack(spec_.rack, spec_.partitionResidualFactor);
      logEvent(now, "partition rack=" + std::to_string(spec_.rack) +
                        formatted(" residual_bytes_per_sec=%.0f",
                                  uplinks->capacity(spec_.rack)));
      break;
    }
    case ScenarioClass::kCascadeHotspot:
      installCascadeHook();
      logEvent(now,
               "cascade hog node=" + std::to_string(spec_.node) +
                   " rack=" + std::to_string(spec_.rack) +
                   formatted(" repair_bytes_per_sec=%.0f peers=%.0f",
                             spec_.cascadeRepairBytesPerSec,
                             static_cast<double>(repairFlows_.size())));
      break;
    case ScenarioClass::kNoisyNeighbor:
      installNoisyHook();
      logEvent(now, "noisy tenants=" + std::to_string(spec_.noisyTenants) +
                        " rack=" + std::to_string(spec_.rack));
      break;
    case ScenarioClass::kGrayFailure:
      installGrayHook();
      logEvent(now,
               "gray node=" + std::to_string(spec_.node) +
                   formatted(" disk_factor=%.2f stall_p=%.2f",
                             spec_.grayDiskFactor,
                             spec_.grayStallProbability));
      break;
  }
}

void ScenarioInjector::deactivate() {
  if (!active_) return;
  active_ = false;
  endedAt_ = cluster_.engine().now();
  const SimTime now = endedAt_;
  if (hookId_ >= 0) {
    cluster_.removeTickHook(hookId_);
    hookId_ = -1;
  }
  switch (spec_.cls) {
    case ScenarioClass::kNone:
      break;
    case ScenarioClass::kRackPartition: {
      topology::UplinkPlane* uplinks = cluster_.uplinks();
      assert(uplinks != nullptr);
      uplinks->restoreRack(spec_.rack);
      logEvent(now, "partition healed rack=" + std::to_string(spec_.rack));
      break;
    }
    case ScenarioClass::kCascadeHotspot:
      logEvent(now, formatted("cascade ended written_bytes=%.0f",
                              cascadeWritten_));
      break;
    case ScenarioClass::kNoisyNeighbor:
      logEvent(now, "noisy tenants evicted");
      break;
    case ScenarioClass::kGrayFailure: {
      hadoop::Node& node = cluster_.node(spec_.node);
      if (grayOriginalDiskCapacity_ > 0.0) {
        node.disk().setCapacity(grayOriginalDiskCapacity_);
        grayOriginalDiskCapacity_ = -1.0;
      }
      logEvent(now, formatted("gray ended stalls=%.0f",
                              static_cast<double>(grayStallCount_)));
      break;
    }
  }
}

void ScenarioInjector::installCascadeHook() {
  hadoop::Node& hog = cluster_.node(spec_.node);
  const topology::ClusterLayout& layout = cluster_.layout();
  // Repair sources: the hog's rack peers, each pushing re-replication
  // traffic through the rack's shared uplink toward the next rack.
  const int dstRack = (spec_.rack + 1) % layout.racks();
  std::vector<NodeId> peers;
  for (NodeId id : layout.rackNodes(spec_.rack)) {
    if (id != spec_.node) peers.push_back(id);
  }
  repairFlows_.clear();
  for (NodeId peer : peers) {
    RepairFlow rf;
    rf.peer = peer;
    repairFlows_.push_back(rf);
  }
  const std::vector<NodeId> dstNodes = layout.rackNodes(dstRack);

  hadoop::Cluster::TickHook hook;
  hook.request = [this, &hog, dstRack](SimTime) {
    if (!active_) return;
    const double remaining = spec_.cascadeDiskBytes - cascadeWritten_;
    if (remaining > 0.0) {
      // The dd-style hog itself, as in the Table 2 DiskHog.
      cascadeDiskHandle_ = hog.disk().request(
          std::min(remaining, 4.0 * hog.disk().capacity()));
    }
    topology::UplinkPlane* uplinks = cluster_.uplinks();
    for (RepairFlow& rf : repairFlows_) {
      hadoop::Node& peer = cluster_.node(rf.peer);
      rf.hNic = peer.nic().request(spec_.cascadeRepairBytesPerSec);
      rf.flow = uplinks->request(spec_.rack, dstRack,
                                 spec_.cascadeRepairBytesPerSec);
    }
  };
  hook.advance = [this, &hog, dstNodes](SimTime) {
    if (!active_) return;
    if (cascadeDiskHandle_ >= 0) {
      const double wrote = hog.disk().granted(cascadeDiskHandle_);
      hog.addDiskWrite(wrote);
      hog.addCpuIowait(0.3);
      hog.addCpuSystem(0.1);
      hog.addProcesses(1);
      hog.addMemUsed(3.0e7);
      cascadeWritten_ += wrote;
      metrics::ProcessActivity p;
      p.name = "diskhog";
      p.cpuSystemCores = 0.1;
      p.writeBytes = wrote;
      p.rssBytes = 3.0e7;
      p.threads = 1;
      p.fds = 4;
      hog.addTrackedProcess(p);
      cascadeDiskHandle_ = -1;
    }
    topology::UplinkPlane* uplinks = cluster_.uplinks();
    for (RepairFlow& rf : repairFlows_) {
      if (rf.hNic < 0) continue;
      hadoop::Node& peer = cluster_.node(rf.peer);
      const double moved = std::min(peer.nic().granted(rf.hNic),
                                    uplinks->granted(rf.flow));
      peer.addDiskRead(moved);
      peer.addNetTx(moved);
      peer.addCpuSystem(0.05);
      // The reconstructed replicas land spread across the destination
      // rack; per-node the trickle is even.
      for (NodeId dst : dstNodes) {
        cluster_.node(dst).addNetRx(moved /
                                    static_cast<double>(dstNodes.size()));
      }
      rf.hNic = -1;
    }
    if (cascadeWritten_ >= spec_.cascadeDiskBytes) deactivate();
  };
  hookId_ = cluster_.addTickHook(std::move(hook));
}

void ScenarioInjector::installNoisyHook() {
  const topology::ClusterLayout& layout = cluster_.layout();
  const std::vector<NodeId> rack = layout.rackNodes(spec_.rack);
  const auto at = std::find(rack.begin(), rack.end(), spec_.node);
  const std::size_t start = static_cast<std::size_t>(at - rack.begin());
  tenants_.clear();
  for (int i = 0; i < spec_.noisyTenants; ++i) {
    Tenant t;
    t.node = rack[(start + static_cast<std::size_t>(i)) % rack.size()];
    tenants_.push_back(t);
  }
  const int dstRack = (spec_.rack + 1) % layout.racks();

  hadoop::Cluster::TickHook hook;
  hook.request = [this, dstRack](SimTime now) {
    if (!active_) return;
    topology::UplinkPlane* uplinks = cluster_.uplinks();
    for (Tenant& t : tenants_) {
      // One draw per tenant per tick: the on/off chain's path is a
      // pure function of the scenario seed.
      const bool flip = rng_.bernoulli(t.burst ? spec_.noisyBurstOffProbability
                                               : spec_.noisyBurstOnProbability);
      if (flip) {
        t.burst = !t.burst;
        logEvent(now, "noisy node=" + std::to_string(t.node) + " burst=" +
                          (t.burst ? "on" : "off"));
      }
      t.hCpu = -1;
      t.hNic = -1;
      t.flow = topology::UplinkFlow{};
      if (!t.burst) continue;
      hadoop::Node& node = cluster_.node(t.node);
      t.hCpu = node.cpu().request(spec_.noisyCpuCores);
      t.hNic = node.nic().request(spec_.noisyTxBytesPerSec);
      t.flow = uplinks->request(spec_.rack, dstRack,
                                spec_.noisyTxBytesPerSec);
    }
  };
  hook.advance = [this](SimTime) {
    if (!active_) return;
    topology::UplinkPlane* uplinks = cluster_.uplinks();
    for (Tenant& t : tenants_) {
      if (t.hCpu < 0) continue;
      hadoop::Node& node = cluster_.node(t.node);
      const double cpu = node.cpu().granted(t.hCpu);
      const double moved = std::min(node.nic().granted(t.hNic),
                                    uplinks->granted(t.flow));
      node.addCpuUser(cpu);
      node.addNetTx(moved);
      node.addRunnable(2);
      node.addProcesses(1);
      node.addMemUsed(4.0e8);
      metrics::ProcessActivity p;
      p.name = "tenant";
      p.cpuUserCores = cpu;
      p.writeBytes = 0.0;
      p.rssBytes = 4.0e8;
      p.threads = 4;
      p.fds = 12;
      node.addTrackedProcess(p);
      t.hCpu = -1;
    }
  };
  hookId_ = cluster_.addTickHook(std::move(hook));
}

void ScenarioInjector::installGrayHook() {
  hadoop::Node& node = cluster_.node(spec_.node);
  grayOriginalDiskCapacity_ = node.disk().capacity();
  node.disk().setCapacity(
      std::max(1.0, grayOriginalDiskCapacity_ * spec_.grayDiskFactor));

  hadoop::Cluster::TickHook hook;
  hook.request = [this, &node](SimTime) {
    if (!active_) return;
    grayStallThisTick_ = rng_.bernoulli(spec_.grayStallProbability);
    grayCpuHandle_ =
        grayStallThisTick_ ? node.cpu().request(spec_.grayStallCores) : -1;
  };
  hook.advance = [this, &node](SimTime now) {
    if (!active_ || !grayStallThisTick_) return;
    const double got = node.cpu().granted(grayCpuHandle_);
    node.addCpuIowait(got);
    node.addRunnable(1);
    ++grayStallCount_;
    grayCpuHandle_ = -1;
    grayStallThisTick_ = false;
    // A sparse breadcrumb trail keeps the event log a sharp
    // determinism probe without swamping it.
    if (grayStallCount_ % 10 == 1) {
      logEvent(now, formatted("gray stall count=%.0f",
                              static_cast<double>(grayStallCount_)));
    }
  };
  hookId_ = cluster_.addTickHook(std::move(hook));
}

}  // namespace asdf::faults
