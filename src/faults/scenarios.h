// Correlated-fault scenario library (DESIGN.md §16).
//
// The Table 2 injectors (faults.h) each break exactly one node, as in
// the paper. Production trouble is rarely that polite: this library
// layers four *correlated* scenario classes on the rack topology —
// compound failures whose blast radius spans rack boundaries and whose
// ground truth may name several culprits at once:
//
//   RackPartition  — a rack's ToR uplink collapses to a residual
//                    trickle; every node in the rack is a culprit
//                    (their cross-rack shuffle and replication stall
//                    together, while within-rack traffic still flows).
//   CascadeHotspot — one node's DiskHog degrades its disk, and the
//                    emergency re-replication it triggers has the
//                    node's rack peers push repair traffic through the
//                    shared uplink — one sick node, a whole rack's
//                    shuffle slowed. The culprit is the hog node
//                    alone; flagged peers count as false positives,
//                    which is precisely the stress the per-class
//                    accuracy report exists to expose.
//   NoisyNeighbor  — several co-racked multi-tenant nodes run bursty
//                    foreign jobs (CPU + cross-rack egress) gated by a
//                    deterministic on/off process; all tenants are
//                    culprits, but their intermittent signature defeats
//                    naive thresholding between bursts.
//   GrayFailure    — one slow-but-alive node: a degraded disk plus
//                    intermittent controller stalls. No crash, no log
//                    error — only a subtle statistical drift.
//
// Determinism contract: a scenario is a pure function of its spec
// (including `seed`). Two runs of the same spec produce byte-identical
// event logs and byte-identical alarms; the contract is CI-gated by
// bench_scenarios' `deterministic` pin and the ScenarioInjector tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hadoop/cluster.h"

namespace asdf::faults {

enum class ScenarioClass : int {
  kNone = 0,
  kRackPartition,
  kCascadeHotspot,
  kNoisyNeighbor,
  kGrayFailure,
};

const char* scenarioName(ScenarioClass cls);
/// Parses a scenario name; accepts both the canonical names
/// ("RackPartition") and the CLI short forms ("partition", "cascade",
/// "noisy-neighbor", "gray"); kNone for ""/"none". Throws ConfigError
/// on unknown names.
ScenarioClass scenarioFromName(const std::string& name);
/// The four injectable scenario classes, in matrix order.
const std::vector<ScenarioClass>& allScenarios();

struct ScenarioSpec {
  ScenarioClass cls = ScenarioClass::kNone;
  /// Target rack (partition / cascade / noisy-neighbor); -1 picks the
  /// last rack, which exercises ragged layouts.
  int rack = -1;
  /// Target node (cascade hog / gray node / first noisy tenant);
  /// kInvalidNode picks the target rack's first node.
  NodeId node = kInvalidNode;
  SimTime startTime = 0.0;
  SimTime endTime = kNoTime;  // kNoTime = active until the run ends
  /// Scenario-local random stream (noisy bursts, gray stalls). Kept
  /// separate from the cluster's stream so the scenario's randomness
  /// is reproducible in isolation.
  std::uint64_t seed = 1;

  // Tunables.
  double partitionResidualFactor = 0.02;   // uplink capacity left
  double cascadeDiskBytes = 80.0e9;        // hog write total
  double cascadeRepairBytesPerSec = 60.0e6;  // per rack peer, cross-rack
  int noisyTenants = 3;
  double noisyCpuCores = 2.0;
  double noisyTxBytesPerSec = 40.0e6;      // per tenant burst egress
  double noisyBurstOnProbability = 1.0 / 15.0;   // off -> on per tick
  double noisyBurstOffProbability = 1.0 / 20.0;  // on -> off per tick
  double grayDiskFactor = 0.35;            // disk capacity multiplier
  double grayStallProbability = 0.05;      // stall ticks
  double grayStallCores = 0.8;             // CPU burned per stall tick
};

/// One line of a scenario's deterministic event log.
struct ScenarioEvent {
  SimTime time = 0.0;
  std::string what;
};

/// Throws ConfigError when the spec cannot run on the given layout
/// (wrong transport is the harness's concern; this checks class
/// requirements, rack/node ranges, times and tunables). Scenario
/// classes that contend on uplinks (partition, cascade, noisy)
/// require a multi-rack layout; a gray failure runs on any.
void validateScenario(const ScenarioSpec& spec,
                      const topology::ClusterLayout& layout);

/// Arms a correlated scenario on a cluster, mirroring FaultInjector:
/// activation/deactivation are scheduled on the cluster's engine, and
/// the injector must outlive the run.
class ScenarioInjector {
 public:
  ScenarioInjector(hadoop::Cluster& cluster, ScenarioSpec spec);
  ~ScenarioInjector();

  ScenarioInjector(const ScenarioInjector&) = delete;
  ScenarioInjector& operator=(const ScenarioInjector&) = delete;

  void arm();

  bool active() const { return active_; }
  /// The spec with rack/node defaults resolved against the layout.
  const ScenarioSpec& spec() const { return spec_; }

  /// Ground-truth culprit slave indices (0-based), ascending.
  std::vector<int> culpritIndices() const;

  /// Deterministic event log: state transitions, burst flips, stall
  /// ticks. Two runs of one spec produce identical logs.
  const std::vector<ScenarioEvent>& events() const { return events_; }

  /// When the scenario stopped being active (kNoTime while active).
  SimTime endedAt() const { return endedAt_; }

 private:
  void activate();
  void deactivate();
  void installCascadeHook();
  void installNoisyHook();
  void installGrayHook();
  void logEvent(SimTime time, std::string what);

  hadoop::Cluster& cluster_;
  ScenarioSpec spec_;
  Rng rng_;
  bool active_ = false;
  int hookId_ = -1;
  SimTime endedAt_ = kNoTime;
  std::vector<ScenarioEvent> events_;

  // Cascade state.
  double cascadeWritten_ = 0.0;
  int cascadeDiskHandle_ = -1;
  struct RepairFlow {
    NodeId peer = kInvalidNode;
    int hNic = -1;
    topology::UplinkFlow flow;
  };
  std::vector<RepairFlow> repairFlows_;

  // Noisy-neighbor state.
  struct Tenant {
    NodeId node = kInvalidNode;
    bool burst = false;
    int hCpu = -1;
    int hNic = -1;
    topology::UplinkFlow flow;
  };
  std::vector<Tenant> tenants_;

  // Gray state.
  double grayOriginalDiskCapacity_ = -1.0;
  bool grayStallThisTick_ = false;
  int grayCpuHandle_ = -1;
  long grayStallCount_ = 0;
};

}  // namespace asdf::faults
