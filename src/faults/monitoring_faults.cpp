#include "faults/monitoring_faults.h"

#include "common/error.h"

namespace asdf::faults {

const char* monitoringFaultName(MonitoringFaultKind kind) {
  switch (kind) {
    case MonitoringFaultKind::kNone:
      return "none";
    case MonitoringFaultKind::kCrash:
      return "crash";
    case MonitoringFaultKind::kHang:
      return "hang";
    case MonitoringFaultKind::kSlow:
      return "slow";
    case MonitoringFaultKind::kPartition:
      return "partition";
  }
  return "unknown";
}

MonitoringFaultKind monitoringFaultFromName(const std::string& name) {
  for (MonitoringFaultKind k :
       {MonitoringFaultKind::kNone, MonitoringFaultKind::kCrash,
        MonitoringFaultKind::kHang, MonitoringFaultKind::kSlow,
        MonitoringFaultKind::kPartition}) {
    if (name == monitoringFaultName(k)) return k;
  }
  if (name.empty()) return MonitoringFaultKind::kNone;
  throw ConfigError("unknown monitoring fault name '" + name + "'");
}

MonitoringFaultInjector::MonitoringFaultInjector(
    sim::SimEngine& engine, rpc::MonitoringFaultBoard& board,
    MonitoringFaultSpec spec)
    : engine_(engine), board_(board), spec_(spec) {}

void MonitoringFaultInjector::arm() {
  if (spec_.kind == MonitoringFaultKind::kNone) return;
  engine_.scheduleAt(spec_.startTime, [this] {
    active_ = true;
    apply(true);
  });
  if (spec_.endTime != kNoTime) {
    engine_.scheduleAt(spec_.endTime, [this] {
      active_ = false;
      apply(false);
    });
  }
}

void MonitoringFaultInjector::apply(bool on) {
  if (spec_.kind == MonitoringFaultKind::kPartition) {
    board_.setPartitioned(spec_.node, on);
    return;
  }
  std::vector<rpc::Daemon> targets;
  if (spec_.allDaemons) {
    targets = {rpc::Daemon::kSadc, rpc::Daemon::kHadoopLog,
               rpc::Daemon::kStrace};
  } else {
    targets = {spec_.daemon};
  }
  for (rpc::Daemon d : targets) {
    switch (spec_.kind) {
      case MonitoringFaultKind::kCrash:
        board_.setCrashed(spec_.node, d, on);
        break;
      case MonitoringFaultKind::kHang:
        board_.setHung(spec_.node, d, on);
        break;
      case MonitoringFaultKind::kSlow:
        board_.setSlowFactor(spec_.node, d, on ? spec_.slowFactor : 1.0);
        break;
      case MonitoringFaultKind::kNone:
      case MonitoringFaultKind::kPartition:
        break;
    }
  }
}

}  // namespace asdf::faults
