// Monitoring-plane fault injection.
//
// Orthogonal to the six Table 2 application faults: these faults break
// the *collection* plane itself — the per-node rpcd daemons and their
// RPC channels — to exercise RpcClient's timeout/retry/breaker path and
// the analysis modules' degraded-mode semantics. A monitoring fault
// never perturbs the monitored workload; a node whose collectors are
// down is still perfectly healthy as far as Hadoop is concerned, and
// the pipeline must report it as "unmonitorable", not "faulty".
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "rpc/rpc_client.h"
#include "sim/engine.h"

namespace asdf::faults {

enum class MonitoringFaultKind : int {
  kNone = 0,
  kCrash,      // daemon process dies: connections are refused
  kHang,       // daemon accepts but never answers: every call times out
  kSlow,       // daemon answers slowly: latency x slowFactor
  kPartition,  // node unreachable: all channels fail fast
};

const char* monitoringFaultName(MonitoringFaultKind kind);
/// Parses "crash" / "hang" / "slow" / "partition"; kNone for
/// "none"/"". Throws ConfigError on unknown names.
MonitoringFaultKind monitoringFaultFromName(const std::string& name);

struct MonitoringFaultSpec {
  MonitoringFaultKind kind = MonitoringFaultKind::kNone;
  NodeId node = kInvalidNode;  // slave id (1-based)
  /// Daemon the fault targets; ignored when allDaemons (the default)
  /// or when kind == kPartition (partitions hit every channel).
  rpc::Daemon daemon = rpc::Daemon::kSadc;
  bool allDaemons = true;
  SimTime startTime = 0.0;
  SimTime endTime = kNoTime;  // kNoTime = broken until the run ends
  double slowFactor = 250.0;  // for kSlow; default pushes past timeout
};

/// Arms one monitoring fault: activation/deactivation events flip the
/// RpcClient's fault board on the engine schedule. Keep alive for the
/// whole run.
class MonitoringFaultInjector {
 public:
  MonitoringFaultInjector(sim::SimEngine& engine,
                          rpc::MonitoringFaultBoard& board,
                          MonitoringFaultSpec spec);

  MonitoringFaultInjector(const MonitoringFaultInjector&) = delete;
  MonitoringFaultInjector& operator=(const MonitoringFaultInjector&) =
      delete;

  /// Schedules activation (and deactivation when endTime is set).
  void arm();

  bool active() const { return active_; }
  const MonitoringFaultSpec& spec() const { return spec_; }

 private:
  void apply(bool on);

  sim::SimEngine& engine_;
  rpc::MonitoringFaultBoard& board_;
  MonitoringFaultSpec spec_;
  bool active_ = false;
};

}  // namespace asdf::faults
