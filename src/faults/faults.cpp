#include "faults/faults.h"

#include <algorithm>
#include <cassert>

#include "common/error.h"
#include "metrics/os_model.h"

namespace asdf::faults {

const char* faultName(FaultType type) {
  switch (type) {
    case FaultType::kNone:
      return "none";
    case FaultType::kCpuHog:
      return "CPUHog";
    case FaultType::kDiskHog:
      return "DiskHog";
    case FaultType::kPacketLoss:
      return "PacketLoss";
    case FaultType::kHadoop1036:
      return "HADOOP-1036";
    case FaultType::kHadoop1152:
      return "HADOOP-1152";
    case FaultType::kHadoop2080:
      return "HADOOP-2080";
  }
  return "unknown";
}

FaultType faultFromName(const std::string& name) {
  for (FaultType t :
       {FaultType::kNone, FaultType::kCpuHog, FaultType::kDiskHog,
        FaultType::kPacketLoss, FaultType::kHadoop1036,
        FaultType::kHadoop1152, FaultType::kHadoop2080}) {
    if (name == faultName(t)) return t;
  }
  if (name.empty()) return FaultType::kNone;
  throw ConfigError("unknown fault name '" + name + "'");
}

const std::vector<FaultType>& allFaults() {
  static const std::vector<FaultType> kAll = {
      FaultType::kCpuHog,     FaultType::kDiskHog,
      FaultType::kPacketLoss, FaultType::kHadoop1036,
      FaultType::kHadoop1152, FaultType::kHadoop2080,
  };
  return kAll;
}

FaultInjector::FaultInjector(hadoop::Cluster& cluster, FaultSpec spec)
    : cluster_(cluster), spec_(spec) {
  assert(spec_.type == FaultType::kNone ||
         (spec_.node >= 1 && spec_.node <= cluster.slaveCount()));
}

FaultInjector::~FaultInjector() {
  if (hookId_ >= 0) cluster_.removeTickHook(hookId_);
}

void FaultInjector::arm() {
  if (spec_.type == FaultType::kNone) return;
  cluster_.engine().scheduleAt(spec_.startTime, [this] { activate(); });
  if (spec_.endTime != kNoTime) {
    cluster_.engine().scheduleAt(spec_.endTime, [this] { deactivate(); });
  }
}

void FaultInjector::installHogHook() {
  hadoop::Node& node = cluster_.node(spec_.node);
  hadoop::Cluster::TickHook hook;
  if (spec_.type == FaultType::kCpuHog) {
    // The hog *achieves* ~70% utilization (the mailing-list report is
    // about observed CPU, not demand): under contention it escalates
    // its demand like a multi-threaded spinner grabbing extra share.
    hook.request = [this, &node](SimTime) {
      if (!active_) return;
      const double target =
          spec_.cpuHogUtilization * cluster_.params().cores;
      cpuDemand_ = std::clamp(
          cpuDemand_ * (lastAchieved_ > 1e-6 ? target / lastAchieved_ : 1.0),
          target, 3.0 * target);
      cpuHandle_ = node.cpu().request(cpuDemand_);
    };
    hook.advance = [this, &node](SimTime) {
      if (!active_ || cpuHandle_ < 0) return;
      const double got = node.cpu().granted(cpuHandle_);
      lastAchieved_ = got;
      node.addCpuUser(got);
      node.addRunnable(3);  // the hog's spinning threads
      node.addProcesses(1);
      node.addMemUsed(6.0e7);
      metrics::ProcessActivity p;
      p.name = "cpuhog";
      p.cpuUserCores = got;
      p.rssBytes = 6.0e7;
      p.threads = 3;
      p.fds = 6;
      node.addTrackedProcess(p);
      cpuHandle_ = -1;
    };
  } else if (spec_.type == FaultType::kDiskHog) {
    hook.request = [this, &node](SimTime) {
      if (!active_) return;
      const double remaining = spec_.diskHogBytes - diskWritten_;
      if (remaining <= 0.0) return;
      // A dd-style sequential writer keeps the queue saturated: its
      // outstanding demand dwarfs the tasks' small spill/merge writes,
      // which is what starves them (the paper's "excessive messages
      // logged to file" symptom).
      diskHandle_ = node.disk().request(
          std::min(remaining, 4.0 * node.disk().capacity()));
    };
    hook.advance = [this, &node](SimTime) {
      if (!active_ || diskHandle_ < 0) return;
      const double wrote = node.disk().granted(diskHandle_);
      node.addDiskWrite(wrote);
      node.addCpuIowait(0.3);
      node.addCpuSystem(0.1);
      node.addProcesses(1);
      node.addMemUsed(3.0e7);
      diskWritten_ += wrote;
      metrics::ProcessActivity p;
      p.name = "diskhog";
      p.cpuSystemCores = 0.1;
      p.writeBytes = wrote;
      p.rssBytes = 3.0e7;
      p.threads = 1;
      p.fds = 4;
      node.addTrackedProcess(p);
      diskHandle_ = -1;
      if (diskWritten_ >= spec_.diskHogBytes) {
        deactivate();  // the 20 GB write is finished
      }
    };
  }
  hookId_ = cluster_.addTickHook(std::move(hook));
}

void FaultInjector::activate() {
  if (active_) return;
  active_ = true;
  hadoop::Node& node = cluster_.node(spec_.node);
  switch (spec_.type) {
    case FaultType::kNone:
      break;
    case FaultType::kCpuHog:
    case FaultType::kDiskHog:
      installHogHook();
      break;
    case FaultType::kPacketLoss:
      node.nic().setLossRate(spec_.packetLossRate);
      break;
    case FaultType::kHadoop1036:
      node.faults().mapHang = true;
      break;
    case FaultType::kHadoop1152:
      node.faults().reduceCopyFail = true;
      break;
    case FaultType::kHadoop2080:
      node.faults().reduceSortHang = true;
      break;
  }
}

void FaultInjector::deactivate() {
  if (!active_) return;
  active_ = false;
  endedAt_ = cluster_.engine().now();
  hadoop::Node& node = cluster_.node(spec_.node);
  switch (spec_.type) {
    case FaultType::kNone:
      break;
    case FaultType::kCpuHog:
    case FaultType::kDiskHog:
      if (hookId_ >= 0) {
        cluster_.removeTickHook(hookId_);
        hookId_ = -1;
      }
      break;
    case FaultType::kPacketLoss:
      node.nic().setLossRate(0.0);
      break;
    case FaultType::kHadoop1036:
      node.faults().mapHang = false;
      break;
    case FaultType::kHadoop1152:
      node.faults().reduceCopyFail = false;
      break;
    case FaultType::kHadoop2080:
      node.faults().reduceSortHang = false;
      break;
  }
}

}  // namespace asdf::faults
