#include "topology/topology.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/error.h"

namespace asdf::topology {

ClusterLayout::ClusterLayout(int slaves, const TopologySpec& spec)
    : slaves_(slaves),
      racks_(spec.racks),
      nodesPerRack_(spec.nodesPerRack),
      uplinkBytesPerSec_(spec.uplinkBytesPerSec) {
  if (slaves_ < 1) {
    throw ConfigError("topology: cluster needs at least one slave, got " +
                      std::to_string(slaves_));
  }
  if (racks_ < 1) {
    throw ConfigError("topology: racks must be >= 1, got " +
                      std::to_string(racks_));
  }
  if (racks_ > slaves_) {
    throw ConfigError("topology: " + std::to_string(racks_) +
                      " racks over " + std::to_string(slaves_) +
                      " slaves would leave a rack with zero nodes");
  }
  if (nodesPerRack_ < 0) {
    throw ConfigError("topology: nodesPerRack must be >= 0, got " +
                      std::to_string(nodesPerRack_));
  }
  if (nodesPerRack_ == 0) {
    nodesPerRack_ = (slaves_ + racks_ - 1) / racks_;  // ceil
  }
  // Every slave must land in a rack...
  if (static_cast<long>(nodesPerRack_) * racks_ < slaves_) {
    throw ConfigError("topology: " + std::to_string(racks_) + " racks x " +
                      std::to_string(nodesPerRack_) +
                      " nodes/rack cannot hold " + std::to_string(slaves_) +
                      " slaves");
  }
  // ...and the last rack must not be empty (a 0-node rack would make
  // rack-level faults and the rack -> tier-group mapping degenerate).
  if (slaves_ <= static_cast<long>(nodesPerRack_) * (racks_ - 1)) {
    throw ConfigError("topology: " + std::to_string(slaves_) +
                      " slaves in racks of " + std::to_string(nodesPerRack_) +
                      " fill fewer than " + std::to_string(racks_) +
                      " racks (the last rack would be empty)");
  }
  if (!(uplinkBytesPerSec_ > 0.0)) {
    throw ConfigError("topology: uplinkBytesPerSec must be positive");
  }
}

int ClusterLayout::rackOf(NodeId node) const {
  if (node < 1 || node > slaves_) return -1;
  return static_cast<int>((node - 1) / nodesPerRack_);
}

int ClusterLayout::rackSize(int rack) const {
  assert(rack >= 0 && rack < racks_);
  const long first = static_cast<long>(rack) * nodesPerRack_;
  const long end = std::min<long>(first + nodesPerRack_, slaves_);
  return static_cast<int>(end - first);
}

NodeId ClusterLayout::hostId(int rack, int idx) const {
  assert(rack >= 0 && rack < racks_);
  assert(idx >= 0 && idx < rackSize(rack));
  return static_cast<NodeId>(rack * nodesPerRack_ + idx + 1);
}

std::vector<NodeId> ClusterLayout::rackNodes(int rack) const {
  std::vector<NodeId> out;
  const int size = rackSize(rack);
  out.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) out.push_back(hostId(rack, i));
  return out;
}

bool ClusterLayout::crossRack(NodeId a, NodeId b) const {
  const int ra = rackOf(a);
  const int rb = rackOf(b);
  return ra >= 0 && rb >= 0 && ra != rb;
}

std::vector<int> ClusterLayout::tierGroups() const {
  std::vector<int> sizes;
  sizes.reserve(static_cast<std::size_t>(racks_));
  for (int r = 0; r < racks_; ++r) sizes.push_back(rackSize(r));
  return sizes;
}

}  // namespace asdf::topology
