#include "topology/uplink.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace asdf::topology {

UplinkPlane::UplinkPlane(const ClusterLayout& layout,
                         double uplinkBytesPerSec)
    : base_(uplinkBytesPerSec) {
  assert(base_ > 0.0);
  tx_.reserve(static_cast<std::size_t>(layout.racks()));
  rx_.reserve(static_cast<std::size_t>(layout.racks()));
  for (int r = 0; r < layout.racks(); ++r) {
    tx_.emplace_back("uplink-tx-" + std::to_string(r), base_);
    rx_.emplace_back("uplink-rx-" + std::to_string(r), base_);
  }
}

void UplinkPlane::beginTick() {
  for (auto& r : tx_) r.beginTick();
  for (auto& r : rx_) r.beginTick();
}

void UplinkPlane::finalize() {
  for (auto& r : tx_) r.finalize();
  for (auto& r : rx_) r.finalize();
}

UplinkFlow UplinkPlane::request(int srcRack, int dstRack, double bytes) {
  UplinkFlow flow;
  if (srcRack < 0 || dstRack < 0 || srcRack == dstRack) return flow;
  assert(srcRack < racks() && dstRack < racks());
  flow.srcRack = srcRack;
  flow.dstRack = dstRack;
  flow.hTx = tx_[static_cast<std::size_t>(srcRack)].request(bytes);
  flow.hRx = rx_[static_cast<std::size_t>(dstRack)].request(bytes);
  return flow;
}

double UplinkPlane::granted(const UplinkFlow& flow) const {
  if (flow.inert()) return std::numeric_limits<double>::infinity();
  return std::min(
      tx_[static_cast<std::size_t>(flow.srcRack)].granted(flow.hTx),
      rx_[static_cast<std::size_t>(flow.dstRack)].granted(flow.hRx));
}

void UplinkPlane::scaleRack(int rack, double factor) {
  assert(rack >= 0 && rack < racks());
  const double capacity = std::max(1.0, base_ * factor);
  tx_[static_cast<std::size_t>(rack)].setCapacity(capacity);
  rx_[static_cast<std::size_t>(rack)].setCapacity(capacity);
}

double UplinkPlane::capacity(int rack) const {
  assert(rack >= 0 && rack < racks());
  return tx_[static_cast<std::size_t>(rack)].capacity();
}

double UplinkPlane::txUtilization(int rack) const {
  assert(rack >= 0 && rack < racks());
  return tx_[static_cast<std::size_t>(rack)].utilization();
}

double UplinkPlane::rxUtilization(int rack) const {
  assert(rack >= 0 && rack < racks());
  return rx_[static_cast<std::size_t>(rack)].utilization();
}

double UplinkPlane::txGranted(int rack) const {
  assert(rack >= 0 && rack < racks());
  return tx_[static_cast<std::size_t>(rack)].totalGranted();
}

double UplinkPlane::rxGranted(int rack) const {
  assert(rack >= 0 && rack < racks());
  return rx_[static_cast<std::size_t>(rack)].totalGranted();
}

}  // namespace asdf::topology
