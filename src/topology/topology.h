// Rack-aware cluster topology (DESIGN.md §16).
//
// The paper's testbed — and every PR before this one — modeled the
// cluster as a single flat switch: any node could reach any other at
// full NIC rate. Real Hadoop clusters hang nodes off top-of-rack
// switches whose uplinks are oversubscribed, so cross-rack shuffle
// flows contend for shared uplink bandwidth. This module provides the
// static layout (rack count, nodes per rack, rack-id/host-id mapping,
// borrowed from replicant-opera's storage-sim); uplink.h provides the
// per-tick bandwidth plane.
//
// Layout contract: slaves 1..N are assigned to racks in contiguous
// ascending blocks of `nodesPerRack` ids; the last rack may be ragged
// (smaller) but never empty. rackOf(node) = (node - 1) / nodesPerRack.
// The master (node 0) lives outside the rack fabric (rack -1): its
// traffic is control-plane chatter, not data-plane shuffle.
//
// A flat topology (racks == 1) must be indistinguishable from the
// pre-topology simulator: no uplink resources exist, no demands are
// registered, and runs are byte-identical to the same seed's pre-rack
// alarms. That invariant is CI-gated (bench_scenarios
// `flat_identical`).
#pragma once

#include <vector>

#include "common/types.h"

namespace asdf::topology {

/// Shape of the rack fabric, carried in HadoopParams/ExperimentSpec.
struct TopologySpec {
  /// Number of racks. 1 = flat (no uplink modeling at all).
  int racks = 1;
  /// Slaves per rack; 0 derives ceil(slaves / racks). When explicit,
  /// the value must cover all slaves without leaving any rack empty.
  int nodesPerRack = 0;
  /// Shared ToR uplink bandwidth per direction, bytes/second. The
  /// default is a 10 Gbps uplink; scenario specs typically drop it to
  /// model oversubscription.
  double uplinkBytesPerSec = 1.25e9;
};

/// Validated, immutable rack layout for a cluster of `slaves` nodes.
/// Construction throws ConfigError on impossible shapes (racks < 1,
/// more racks than slaves, an explicit nodesPerRack that strands nodes
/// or leaves the last rack empty).
class ClusterLayout {
 public:
  ClusterLayout(int slaves, const TopologySpec& spec);

  int slaves() const { return slaves_; }
  int racks() const { return racks_; }
  int nodesPerRack() const { return nodesPerRack_; }
  double uplinkBytesPerSec() const { return uplinkBytesPerSec_; }

  /// True when the layout is a single flat switch (no uplinks).
  bool flat() const { return racks_ == 1; }

  /// Rack of a node id: -1 for the master (node 0) or any id outside
  /// [1, slaves]; otherwise (node - 1) / nodesPerRack.
  int rackOf(NodeId node) const;

  /// Number of slaves in `rack` (the last rack may be ragged).
  int rackSize(int rack) const;

  /// Node id of the idx-th slave of `rack` (idx in [0, rackSize)).
  NodeId hostId(int rack, int idx) const;

  /// All node ids in `rack`, ascending.
  std::vector<NodeId> rackNodes(int rack) const;

  /// True when the two ids live in different racks (master and
  /// out-of-range ids are never cross-rack: they are off-fabric).
  bool crossRack(NodeId a, NodeId b) const;

  /// Rack sizes in rack order — the natural rack -> aggregation-tier
  /// group mapping (tierGroupsFor uses this when a tiered spec names
  /// no explicit groups on a multi-rack topology).
  std::vector<int> tierGroups() const;

 private:
  int slaves_;
  int racks_;
  int nodesPerRack_;
  double uplinkBytesPerSec_;
};

}  // namespace asdf::topology
