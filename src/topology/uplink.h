// Per-rack shared uplink bandwidth plane (DESIGN.md §16).
//
// Each rack owns two ShareResources — uplink transmit (rack -> spine)
// and uplink receive (spine -> rack) — refreshed every simulator tick
// in lockstep with the node resources. A cross-rack byte stream
// registers one demand on its source rack's tx uplink and one on its
// destination rack's rx uplink; the stream's achievable rate is then
//
//   min(src NIC grant, src-rack uplink-tx grant,
//       dst-rack uplink-rx grant, dst NIC grant)
//
// so an oversubscribed or partitioned uplink throttles every crossing
// flow proportionally, exactly like the node-local resources throttle
// co-located tasks. Same-rack flows never touch the plane: on a flat
// topology (racks == 1) no UplinkPlane exists at all and every flow
// handle is inert, which keeps flat runs byte-identical to the
// pre-topology simulator (min(x, +inf) == x, and no RNG draw or
// resource handle order changes).
//
// Scenario hooks (scaleRack / restoreRack) rescale an uplink against
// its *base* capacity and restore it exactly, so a partition window
// heals to bit-identical bandwidth. Capacity is clamped to >= 1 B/s:
// ShareResource requires positive capacity, and a 1 B/s residual
// models the keepalive trickle a real partial partition leaks.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "sim/resources.h"
#include "topology/topology.h"

namespace asdf::topology {

/// Handle for one cross-rack flow's pair of uplink demands, valid for
/// the tick it was requested in. Default-constructed handles are
/// inert: granted() returns +infinity so callers can unconditionally
/// min() them into endpoint grants.
struct UplinkFlow {
  int srcRack = -1;
  int dstRack = -1;
  int hTx = -1;
  int hRx = -1;
  bool inert() const { return hTx < 0; }
};

class UplinkPlane {
 public:
  UplinkPlane(const ClusterLayout& layout, double uplinkBytesPerSec);

  int racks() const { return static_cast<int>(tx_.size()); }

  /// Tick protocol, driven by Cluster::tick in lockstep with nodes.
  void beginTick();
  void finalize();

  /// Registers a cross-rack demand of `bytes` for this tick. Returns
  /// an inert flow when the racks coincide or either end is
  /// off-fabric (master / out-of-range).
  UplinkFlow request(int srcRack, int dstRack, double bytes);

  /// min(tx grant, rx grant) for the flow; +infinity when inert.
  double granted(const UplinkFlow& flow) const;

  /// Scales a rack's uplink (both directions) to factor x its *base*
  /// capacity, clamped to >= 1 B/s. factor 1 restores exactly;
  /// repeated calls do not compound.
  void scaleRack(int rack, double factor);
  void restoreRack(int rack) { scaleRack(rack, 1.0); }

  double baseCapacity() const { return base_; }
  double capacity(int rack) const;
  double txUtilization(int rack) const;
  double rxUtilization(int rack) const;
  double txGranted(int rack) const;
  double rxGranted(int rack) const;

 private:
  double base_;
  std::vector<sim::ShareResource> tx_;
  std::vector<sim::ShareResource> rx_;
};

}  // namespace asdf::topology
