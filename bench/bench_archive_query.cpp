// Query-path speed: tsdb::Store scan of one (node, metric, window)
// against the only alternative the archive had before compaction — a
// full ArchiveReader load that decodes every snapshot to extract the
// same series. The Store is constructed cold for every timed scan, so
// the measured cost includes listing the directory and loading every
// compacted footer index, not just the chunk pread.
//
// Usage:
//   bench_archive_query [--records=30000] [--nodes=16]
//                       [--segment-bytes=1048576] [--window=30]
//                       [--min-speedup=0]
//                       [--json=bench/baselines/archive_query.json]
//
// --min-speedup gates the raw-window scan: exit 1 when cold scan is
// not at least that many times faster than the full replay extraction.
// check_bench_regression ignores the speedup/_wall_s fields by
// default; the deterministic fields (counts, match flags) are pinned
// with --exact in CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "archive/reader.h"
#include "archive/writer.h"
#include "bench_util.h"
#include "metrics/catalog.h"
#include "metrics/sadc.h"
#include "rpc/payloads.h"
#include "rpc/wire.h"
#include "tsdb/compactor.h"
#include "tsdb/store.h"

namespace {

using namespace asdf;

// One decodable sadc snapshot per (node, tick). The queried metric
// (index 0, "cpu_user_pct") varies with both so a wrong chunk or a
// shifted window shows up as a value mismatch, not just a count.
std::vector<std::uint8_t> makePayload(int node, long tick) {
  rpc::Encoder enc;
  enc.putDouble(static_cast<double>(tick));
  std::vector<double> nodeVec(metrics::kNodeMetricCount, 1.0);
  for (std::size_t m = 0; m < nodeVec.size(); ++m) {
    nodeVec[m] = static_cast<double>(node) * 1000.0 +
                 static_cast<double>(m) +
                 0.001 * static_cast<double>(tick % 997);
  }
  std::vector<double> nic(metrics::kNicMetricCount, 7.5);
  enc.putDoubleVector(nodeVec);
  enc.putDoubleVector(nic);
  enc.putU32(0);
  return std::vector<std::uint8_t>(enc.bytes().begin(), enc.bytes().end());
}

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The pre-tsdb way to answer a query: load the whole archive, decode
/// every snapshot, keep the one series. This is what `asdf_archive
/// replay` effectively pays before it can look at any metric.
std::vector<tsdb::RawPoint> replayExtract(const std::string& dir,
                                          NodeId node, std::uint32_t metric,
                                          double from, double to) {
  std::vector<tsdb::RawPoint> out;
  archive::ArchiveReader reader(dir);
  for (const archive::SampleRecord& rec : reader.records()) {
    if (rec.kind != rpc::CollectKind::kSadc || !rec.ok || rec.node != node ||
        rec.payload.empty() || rec.now < from || rec.now > to) {
      continue;
    }
    metrics::SadcSnapshot snap;
    try {
      rpc::Decoder payload(rec.payload);
      snap = rpc::decodeSnapshot(payload);
    } catch (const std::exception&) {
      continue;
    }
    if (snap.node.size() != metrics::kNodeMetricCount ||
        snap.nic.size() != metrics::kNicMetricCount) {
      continue;
    }
    const std::vector<double> values = metrics::flattenNodeVector(snap);
    out.push_back({rec.now, values[metric]});
  }
  return out;
}

bool bitExactEqual(const std::vector<tsdb::RawPoint>& a,
                   const std::vector<tsdb::RawPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i].t, &b[i].t, sizeof(double)) != 0 ||
        std::memcmp(&a[i].v, &b[i].v, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const long records = bench::flagInt(argc, argv, "records", 30000);
  const int nodes = static_cast<int>(bench::flagInt(argc, argv, "nodes", 16));
  const std::size_t segmentBytes = static_cast<std::size_t>(
      bench::flagInt(argc, argv, "segment-bytes", 1 << 20));
  const double window = bench::flagDouble(argc, argv, "window", 30.0);
  const double minSpeedup = bench::flagDouble(argc, argv, "min-speedup", 0.0);
  const std::string jsonPath = bench::flagValue(argc, argv, "json", "");

  const std::string dir = "bench-archive-query.tmp";
  std::filesystem::remove_all(dir);

  archive::ArchiveMeta meta;
  meta.seed = 42;
  meta.slaves = nodes;
  meta.source = "bench";
  meta.duration = static_cast<double>(records / nodes);

  archive::ArchiveWriterOptions opts;
  opts.dir = dir;
  opts.maxSegmentBytes = segmentBytes;
  opts.maxSegmentSeconds = 1.0e18;  // rotate by size only

  std::printf("archive query: %ld records across %d nodes, %zu B segments, "
              "%.0f s window\n",
              records, nodes, segmentBytes, window);
  bench::printRule();

  long segmentsSealed = 0;
  {
    archive::ArchiveWriter writer(opts, meta);
    for (long i = 0; i < records; ++i) {
      const int node = static_cast<int>(1 + i % nodes);
      const long tick = i / nodes;
      const std::vector<std::uint8_t> payload = makePayload(node, tick);
      rpc::CollectSample sample;
      sample.kind = rpc::CollectKind::kSadc;
      sample.node = static_cast<NodeId>(node);
      sample.now = static_cast<double>(tick);
      sample.attempts = 1;
      sample.ok = true;
      sample.payload = payload.data();
      sample.payloadSize = payload.size();
      writer.onSample(sample);
    }
    writer.close();
    segmentsSealed = writer.segmentsSealed();
  }

  long compactedFiles = 0;
  std::int64_t compactedBytes = 0;
  {
    const auto start = std::chrono::steady_clock::now();
    for (const tsdb::CompactResult& r : tsdb::compactArchive(dir)) {
      if (!r.skipped) ++compactedFiles;
      compactedBytes += r.fileBytes;
    }
    std::printf("compact: %ld segments -> %lld tsdb bytes in %.3f s\n",
                compactedFiles, static_cast<long long>(compactedBytes),
                secondsSince(start));
  }

  // A window in the middle of the recording, far from both edges.
  const double lastTick = static_cast<double>(records / nodes - 1);
  const double from = lastTick * 0.5;
  const double to = from + window;
  const NodeId node = static_cast<NodeId>(1 + nodes / 2);
  const std::uint32_t metric = tsdb::metricIndexOf("cpu_user_pct");

  // Full replay extraction (the baseline the speedup is against).
  const auto replayStart = std::chrono::steady_clock::now();
  const std::vector<tsdb::RawPoint> replayPoints =
      replayExtract(dir, node, metric, from, to);
  const double replaySeconds = secondsSince(replayStart);
  std::printf("replay extract: %zu points in %.4f s (full archive decode)\n",
              replayPoints.size(), replaySeconds);

  // Cold raw-window scan: fresh Store per iteration, best of several
  // so one scheduler hiccup does not decide the gate.
  const int kIters = 5;
  double scanSeconds = 1.0e18;
  std::vector<tsdb::RawPoint> scanPoints;
  for (int i = 0; i < kIters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    tsdb::Store store(dir);
    tsdb::ScanResult r = store.scan(
        {node, "cpu_user_pct", from, to, tsdb::Resolution::kRaw});
    const double s = secondsSince(start);
    if (s < scanSeconds) {
      scanSeconds = s;
      scanPoints = std::move(r.points);
    }
  }
  const bool pointsMatch = bitExactEqual(replayPoints, scanPoints);
  const double speedup = replaySeconds / scanSeconds;
  std::printf("cold scan:      %zu points in %.6f s (%.0fx, bit-exact "
              "vs replay: %s)\n",
              scanPoints.size(), scanSeconds, speedup,
              pointsMatch ? "yes" : "NO");

  // Cold 1m rollup over the whole recording — the "plot the run"
  // query, answered from pre-reduced buckets.
  double rollupSeconds = 1.0e18;
  std::size_t rollupBuckets = 0;
  std::int64_t rollupCount = 0;
  for (int i = 0; i < kIters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    tsdb::Store store(dir);
    const tsdb::ScanResult r = store.scan(
        {node, "cpu_user_pct", 0.0, lastTick, tsdb::Resolution::k1m});
    const double s = secondsSince(start);
    if (s < rollupSeconds) {
      rollupSeconds = s;
      rollupBuckets = r.buckets.size();
      rollupCount = 0;
      for (const tsdb::Bucket& b : r.buckets) rollupCount += b.count;
    }
  }
  const double rollupSpeedup = replaySeconds / rollupSeconds;
  std::printf("rollup scan:    %zu 1m buckets (%lld raw points) in %.6f s "
              "(%.0fx)\n",
              rollupBuckets, static_cast<long long>(rollupCount),
              rollupSeconds, rollupSpeedup);
  bench::printRule();

  bool ok = pointsMatch && !replayPoints.empty() &&
            rollupCount == static_cast<std::int64_t>(records / nodes);
  if (!pointsMatch) std::fprintf(stderr, "FAIL: scan != replay extraction\n");
  if (minSpeedup > 0.0 && speedup < minSpeedup) {
    std::fprintf(stderr, "FAIL: cold scan speedup %.0fx below required "
                 "%.0fx\n", speedup, minSpeedup);
    ok = false;
  }

  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"archive_query\",\n");
    std::fprintf(f, "  \"records\": %ld,\n", records);
    std::fprintf(f, "  \"segments_sealed\": %ld,\n", segmentsSealed);
    std::fprintf(f, "  \"compacted_files\": %ld,\n", compactedFiles);
    std::fprintf(f, "  \"window_points\": %zu,\n", scanPoints.size());
    std::fprintf(f, "  \"points_match_replay\": %s,\n",
                 pointsMatch ? "true" : "false");
    std::fprintf(f, "  \"rollup_buckets\": %zu,\n", rollupBuckets);
    std::fprintf(f, "  \"rollup_point_count\": %lld,\n",
                 static_cast<long long>(rollupCount));
    std::fprintf(f, "  \"replay_wall_s\": %.4f,\n", replaySeconds);
    std::fprintf(f, "  \"scan_wall_s\": %.6f,\n", scanSeconds);
    std::fprintf(f, "  \"rollup_wall_s\": %.6f,\n", rollupSeconds);
    std::fprintf(f, "  \"scan_speedup\": %.0f,\n", speedup);
    std::fprintf(f, "  \"rollup_speedup\": %.0f\n", rollupSpeedup);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", jsonPath.c_str());
  }

  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
