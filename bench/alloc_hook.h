// Counting-allocator hook for data-plane instrumentation.
//
// Linking the asdf_alloc_hook library into a binary replaces the
// global operator new/delete with counting wrappers around malloc or
// free, so a bench or test can measure exactly how many heap
// allocations a region of code performs:
//
//   asdf::allochook::reset();
//   ... steady-state region ...
//   auto t = asdf::allochook::totals();   // t.allocs == 0, hopefully
//
// The counters are relaxed atomics: cheap enough to leave enabled for
// a whole bench run, and correct under the thread-pool executor. Only
// link this library into binaries that exist to measure allocation
// (bench_data_plane, asdf_zero_alloc_test) — everything else should
// keep the system allocator's untouched fast path.
#pragma once

#include <cstdint>

namespace asdf::allochook {

struct Totals {
  std::uint64_t allocs = 0;      // operator new calls
  std::uint64_t frees = 0;       // operator delete calls
  std::uint64_t bytes = 0;       // bytes requested from operator new
};

/// Snapshot of the counters since the last reset().
Totals totals();

/// Zeroes the counters.
void reset();

}  // namespace asdf::allochook
