// Ablation: decision rule of the black-box fingerpointer.
//
// Compares the paper's fixed L1 threshold (trained on fault-free data,
// Figure 6a) against the self-calibrating MAD rule ([analysis_mad]) on
// the same recorded windows: detection quality on a CPUHog run and
// false positives on a fault-free run. The fixed threshold wins when a
// training trace representative of production exists; MAD needs no
// training pass but pays with a higher noise floor on small clusters.
#include "analysis/mad.h"
#include "common/strings.h"
#include "bench_util.h"

using namespace asdf;

namespace {

// Re-scores a recorded black-box series under the MAD rule, from the
// raw L1 scores the analysis recorded per window.
analysis::AlarmSeries rescoreWithMad(const analysis::AlarmSeries& series,
                                     double k) {
  analysis::AlarmSeries out = series;
  for (auto& record : out) {
    const analysis::PeerComparisonResult result =
        analysis::madCompare(record.scores, k);
    record.flags = result.flags;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  harness::ExperimentSpec base = bench::benchSpec(argc, argv);
  std::printf("Ablation: fixed-threshold vs MAD decision rule "
              "(%d slaves, CPUHog + fault-free)\n\n",
              base.slaves);
  const analysis::BlackBoxModel model = harness::trainModel(base);

  harness::ExperimentSpec faulty = base;
  faulty.fault.type = faults::FaultType::kCpuHog;
  const harness::ExperimentResult withFault =
      harness::runExperiment(faulty, model);
  harness::ExperimentSpec clean = base;
  clean.fault.type = faults::FaultType::kNone;
  const harness::ExperimentResult noFault =
      harness::runExperiment(clean, model);

  bench::printRule();
  std::printf("%-26s %14s %10s %12s\n", "decision rule", "BB accuracy %",
              "FPR %", "latency s");
  bench::printRule();

  // The paper's rule at its operating point.
  {
    const auto summary = harness::summarize(withFault);
    std::printf("%-26s %14.1f %10.2f %12.0f\n", "fixed threshold = 60",
                summary.blackBox.eval.balancedAccuracyPct(),
                analysis::flaggedFractionPct(noFault.blackBox),
                summary.blackBox.latencySeconds);
  }
  // MAD at several k, replayed over the same recorded windows.
  for (double k : {4.0, 6.0, 10.0}) {
    const analysis::AlarmSeries faultMad =
        rescoreWithMad(withFault.blackBox, k);
    const analysis::AlarmSeries cleanMad =
        rescoreWithMad(noFault.blackBox, k);
    const analysis::EvalResult eval =
        analysis::evaluate(faultMad, withFault.truth);
    std::printf("%-26s %14.1f %10.2f %12.0f\n",
                strformat("MAD rule, k = %.0f", k).c_str(),
                eval.balancedAccuracyPct(),
                analysis::flaggedFractionPct(cleanMad),
                analysis::fingerpointingLatency(faultMad, withFault.truth));
  }
  bench::printRule();
  std::printf("expected: comparable detection; MAD trades the training "
              "pass for a higher small-cluster noise floor\n");
  return 0;
}
