// Serial vs thread-pool wavefront dispatch on a wide collection DAG.
//
// The paper's fpt-core gives every module its own thread precisely so
// that slow, blocking data collection (RPC polls of remote daemons)
// overlaps. This bench reproduces that shape: a wide level of
// collector modules whose run() blocks for a fixed poll latency (as a
// real sadc/hadoop_log poll would block on the network), feeding a
// small analysis fan-in. With the SerialExecutor the poll latencies
// add up; with a ThreadPoolExecutor they overlap, so wall-clock time
// shrinks by roughly the thread count even on a single core.
//
// Flags: --collectors=50 --ticks=20 --poll-ms=2 --threads=4 --json
//
// Prints one row per executor plus the pool/serial speedup; exits
// non-zero if results diverge across executors (they must not: the
// level barrier makes the analysis input set executor-independent).
// --json emits the same data machine-readably for
// scripts/check_bench_regression.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "core/fpt_core.h"
#include "core/module.h"
#include "core/registry.h"
#include "sim/engine.h"

namespace {

using namespace asdf;

/// A collector whose poll blocks like a remote RPC, then emits a
/// deterministic scalar.
class SlowCollector final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    pollMs_ = ctx.numParam("poll_ms", 2.0);
    value_ = ctx.numParam("value", 1.0);
    out_ = ctx.addOutput("output0");
    ctx.requestPeriodic(1.0);
  }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(pollMs_));
    ++polls_;
    ctx.write(out_, value_ * static_cast<double>(polls_));
  }

 private:
  double pollMs_ = 2.0;
  double value_ = 1.0;
  long polls_ = 0;
  int out_ = -1;
};

/// Sums every fresh input; the checksum proves all executors fed the
/// analysis the same data.
class SummingAnalysis final : public core::Module {
 public:
  static double checksum;
  void init(core::ModuleContext& ctx) override {
    ctx.setInputTrigger(static_cast<int>(ctx.intParam("trigger", 1)));
  }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    for (const auto& name : ctx.inputNames()) {
      for (std::size_t i = 0; i < ctx.inputWidth(name); ++i) {
        if (ctx.inputFresh(name, i)) {
          checksum += core::asScalar(ctx.input(name, i).value);
        }
      }
    }
  }
};

double SummingAnalysis::checksum = 0.0;

std::string buildConfig(int collectors, double pollMs) {
  std::string config;
  std::string analysisInputs;
  for (int i = 0; i < collectors; ++i) {
    config += strformat(
        "[collector]\nid = c%d\npoll_ms = %.3f\nvalue = %d\n\n", i, pollMs,
        i + 1);
    analysisInputs += strformat("input[x%d] = c%d.output0\n", i, i);
  }
  config += strformat("[analysis]\nid = sum\ntrigger = %d\n", collectors);
  config += analysisInputs;
  return config;
}

struct RunResult {
  double wallSeconds = 0.0;
  double checksum = 0.0;
  std::uint64_t runs = 0;
};

RunResult runWith(std::unique_ptr<core::Executor> executor, int collectors,
                  double pollMs, int ticks) {
  core::ModuleRegistry registry;
  registry.registerType("collector",
                        [] { return std::make_unique<SlowCollector>(); });
  registry.registerType("analysis",
                        [] { return std::make_unique<SummingAnalysis>(); });
  SummingAnalysis::checksum = 0.0;

  sim::SimEngine engine;
  core::FptCore fpt(engine, core::Environment{}, &registry);
  fpt.setExecutor(std::move(executor));
  fpt.configureFromText(buildConfig(collectors, pollMs));

  const auto start = std::chrono::steady_clock::now();
  engine.runUntil(ticks);
  RunResult out;
  out.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.checksum = SummingAnalysis::checksum;
  out.runs = fpt.totalRuns();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asdf;
  const int collectors =
      static_cast<int>(bench::flagInt(argc, argv, "collectors", 50));
  const int ticks = static_cast<int>(bench::flagInt(argc, argv, "ticks", 20));
  const double pollMs = bench::flagDouble(argc, argv, "poll-ms", 2.0);
  const int threads =
      static_cast<int>(bench::flagInt(argc, argv, "threads", 4));
  const bool json = bench::flagPresent(argc, argv, "json");

  if (!json) {
    std::printf("parallel dispatch: %d collectors x %d ticks, %.1f ms poll\n",
                collectors, ticks, pollMs);
    bench::printRule();
    std::printf("%-12s %12s %14s %10s\n", "executor", "wall (s)",
                "module runs", "speedup");
    bench::printRule();
  }

  const RunResult serial =
      runWith(std::make_unique<core::SerialExecutor>(), collectors, pollMs,
              ticks);
  if (!json) {
    std::printf("%-12s %12.3f %14llu %10s\n", "serial", serial.wallSeconds,
                static_cast<unsigned long long>(serial.runs), "1.00x");
  }

  bool ok = true;
  struct Row {
    std::string name;
    RunResult result;
  };
  std::vector<Row> rows{{"serial", serial}};
  std::vector<int> widths{2};
  if (threads > 1 && threads != 2) widths.push_back(threads);
  for (int n : widths) {
    const RunResult pooled =
        runWith(std::make_unique<core::ThreadPoolExecutor>(n), collectors,
                pollMs, ticks);
    rows.push_back({strformat("pool(%d)", n), pooled});
    if (!json) {
      std::printf("%-12s %12.3f %14llu %9.2fx\n",
                  strformat("pool(%d)", n).c_str(), pooled.wallSeconds,
                  static_cast<unsigned long long>(pooled.runs),
                  serial.wallSeconds / pooled.wallSeconds);
    }
    if (pooled.checksum != serial.checksum || pooled.runs != serial.runs) {
      std::fprintf(stderr, "DIVERGENCE: pool(%d) checksum %.1f vs serial "
                   "%.1f\n", n, pooled.checksum, serial.checksum);
      ok = false;
    }
  }
  if (json) {
    std::printf("{\n  \"bench\": \"parallel_dispatch\",\n"
                "  \"collectors\": %d, \"ticks\": %d, \"poll_ms\": %.3f,\n"
                "  \"executors\": [\n",
                collectors, ticks, pollMs);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("    {\"name\": \"%s\", \"wall_s\": %.3f, "
                  "\"module_runs\": %llu, \"checksum\": %.1f, "
                  "\"speedup\": %.2f}%s\n",
                  r.name.c_str(), r.result.wallSeconds,
                  static_cast<unsigned long long>(r.result.runs),
                  r.result.checksum,
                  serial.wallSeconds / r.result.wallSeconds,
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    bench::printRule();
  }
  return ok ? 0 : 1;
}
