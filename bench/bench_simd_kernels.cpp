// Latency of the vectorized analysis kernels (src/common/simd.h) vs
// their scalar reference paths, plus a bit-exactness spot check on the
// same buffers the timing runs use.
//
// Usage:
//   bench_simd_kernels [--n=64] [--json=PATH] [--min-speedup=X]
//
// --n is the vector length per call (64 = one sadc metric row, the
// shape kmeans/peercompare/MAD actually run at). --min-speedup gates
// the geometric-mean speedup of the vector dispatch over the scalar
// path: exit 1 when it comes in under X. On a machine (or build) with
// no SIMD support the gate auto-passes — there is nothing to compare.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/simd.h"

namespace {

using namespace asdf;

// Deterministic fill: mixed magnitudes, a few exact ties (diff <= 1
// branch), no dependence on libc rand.
void fill(std::vector<double>& v, std::uint64_t seed) {
  std::uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (double& x : v) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    const double u =
        static_cast<double>((s >> 11) & ((1ull << 40) - 1)) / (1ull << 40);
    x = (u - 0.5) * 200.0;
  }
}

volatile double g_sink = 0.0;

/// Times `fn` (which must fold its result into g_sink) and returns
/// ns per call, running enough iterations to dominate clock noise.
template <typename Fn>
double nsPerCall(Fn&& fn) {
  // Warm up and pick an iteration count targeting ~20 ms of work.
  const auto t0 = std::chrono::steady_clock::now();
  long probe = 0;
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(2)) {
    fn();
    ++probe;
  }
  const long iters = probe < 1 ? 1 : probe * 10;
  const auto start = std::chrono::steady_clock::now();
  for (long i = 0; i < iters; ++i) fn();
  const double ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - start)
          .count();
  return ns / static_cast<double>(iters);
}

struct KernelResult {
  const char* name;
  double scalarNs = 0.0;
  double simdNs = 0.0;
  double speedup = 1.0;
  bool bitExact = true;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      static_cast<std::size_t>(bench::flagInt(argc, argv, "n", 64));
  const std::string jsonPath = bench::flagValue(argc, argv, "json", "");
  const double minSpeedup = bench::flagDouble(argc, argv, "min-speedup", 0.0);

  std::vector<double> a(n), b(n), sigma(n), out(n);
  fill(a, 1);
  fill(b, 2);
  fill(sigma, 3);
  for (double& s : sigma) s = std::fabs(s) + 0.5;
  // A few exact ties so whiteBoxCriticalK exercises the <= 1 branch.
  for (std::size_t i = 0; i + 7 < n; i += 7) b[i] = a[i] + 0.5;

  const simd::Isa best = simd::bestSupportedIsa();
  std::printf("simd kernels: n=%zu, best ISA %s\n", n, simd::isaName(best));
  bench::printRule();
  std::printf("%22s %12s %12s %10s %10s\n", "kernel", "scalar ns", "simd ns",
              "speedup", "bit-exact");
  bench::printRule();

  KernelResult results[] = {
      {"sq_distance"}, {"l1_distance"}, {"white_box_critical_k"},
      {"abs_deviations"}};

  const auto timeAll = [&](KernelResult* r) {
    r[0].simdNs = nsPerCall([&] { g_sink += simd::sqDistance(a.data(), b.data(), n); });
    r[1].simdNs = nsPerCall([&] { g_sink += simd::l1Distance(a.data(), b.data(), n); });
    r[2].simdNs = nsPerCall([&] {
      g_sink += simd::whiteBoxCriticalK(a.data(), b.data(), sigma.data(), n,
                                        1e9);
    });
    r[3].simdNs = nsPerCall([&] {
      simd::absDeviations(a.data(), 3.25, out.data(), n);
      g_sink += out[0];
    });
  };

  // Vector dispatch first (whatever the machine picks), then pinned
  // scalar on the same buffers; bit-exactness compares the two.
  double simdVals[4];
  simd::forceIsa(best);
  timeAll(results);
  simdVals[0] = simd::sqDistance(a.data(), b.data(), n);
  simdVals[1] = simd::l1Distance(a.data(), b.data(), n);
  simdVals[2] = simd::whiteBoxCriticalK(a.data(), b.data(), sigma.data(), n, 1e9);
  simd::absDeviations(a.data(), 3.25, out.data(), n);
  simdVals[3] = out[n / 2];

  simd::forceIsa(simd::Isa::kScalar);
  KernelResult scalarRuns[] = {
      {"sq_distance"}, {"l1_distance"}, {"white_box_critical_k"},
      {"abs_deviations"}};
  timeAll(scalarRuns);
  double scalarVals[4];
  scalarVals[0] = simd::sqDistance(a.data(), b.data(), n);
  scalarVals[1] = simd::l1Distance(a.data(), b.data(), n);
  scalarVals[2] = simd::whiteBoxCriticalK(a.data(), b.data(), sigma.data(), n, 1e9);
  simd::absDeviations(a.data(), 3.25, out.data(), n);
  scalarVals[3] = out[n / 2];
  simd::forceIsa(best);  // restore

  double logSum = 0.0;
  for (int i = 0; i < 4; ++i) {
    results[i].scalarNs = scalarRuns[i].simdNs;
    results[i].speedup = results[i].scalarNs / results[i].simdNs;
    results[i].bitExact =
        std::memcmp(&simdVals[i], &scalarVals[i], sizeof(double)) == 0;
    logSum += std::log(results[i].speedup);
    std::printf("%22s %12.1f %12.1f %9.2fx %10s\n", results[i].name,
                results[i].scalarNs, results[i].simdNs, results[i].speedup,
                results[i].bitExact ? "yes" : "NO");
  }
  const double geomean = std::exp(logSum / 4.0);
  bench::printRule();
  std::printf("geomean speedup: %.2fx (%s dispatch)\n", geomean,
              simd::isaName(best));

  bool allExact = true;
  for (const KernelResult& r : results) allExact = allExact && r.bitExact;

  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"simd_kernels\",\n");
    std::fprintf(f, "  \"schema_version\": 1,\n");
    std::fprintf(f, "  \"n\": %zu,\n", n);
    std::fprintf(f, "  \"best_isa\": \"%s\",\n", simd::isaName(best));
    std::fprintf(f, "  \"all_bit_exact\": %s,\n", allExact ? "true" : "false");
    std::fprintf(f, "  \"geomean_speedup\": %.2f,\n", geomean);
    std::fprintf(f, "  \"kernels\": [\n");
    for (int i = 0; i < 4; ++i) {
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"scalar_ns\": %.1f, "
                   "\"simd_ns\": %.1f, \"speedup\": %.2f, "
                   "\"bit_exact\": %s}%s\n",
                   results[i].name, results[i].scalarNs, results[i].simdNs,
                   results[i].speedup, results[i].bitExact ? "true" : "false",
                   i < 3 ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", jsonPath.c_str());
  }

  if (!allExact) {
    std::fprintf(stderr, "FAIL: vector dispatch is not bit-exact against "
                         "the scalar reference\n");
    return 1;
  }
  if (minSpeedup > 0.0) {
    if (best == simd::Isa::kScalar) {
      std::printf("gate: no SIMD support in this build/CPU; speedup gate "
                  "skipped\n");
    } else if (geomean < minSpeedup) {
      std::fprintf(stderr,
                   "FAIL: geomean speedup %.2fx is below the "
                   "--min-speedup=%.2f gate\n",
                   geomean, minSpeedup);
      return 1;
    } else {
      std::printf("gate: %.2fx >= %.2fx required\n", geomean, minSpeedup);
    }
  }
  return 0;
}
