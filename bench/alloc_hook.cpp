// Global operator new/delete replacements that count every heap
// allocation. Kept in one translation unit with the query functions so
// that referencing totals()/reset() pulls the replacement operators
// out of the static library archive.
#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};

void* countedAlloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void countedFree(void* ptr) {
  if (ptr == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(ptr);
}

void* countedAlignedAlloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (size == 0) size = align;
  return std::aligned_alloc(align, (size + align - 1) / align * align);
}

}  // namespace

namespace asdf::allochook {

Totals totals() {
  return Totals{g_allocs.load(std::memory_order_relaxed),
                g_frees.load(std::memory_order_relaxed),
                g_bytes.load(std::memory_order_relaxed)};
}

void reset() {
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace asdf::allochook

void* operator new(std::size_t size) {
  if (void* p = countedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = countedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return countedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return countedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = countedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = countedAlignedAlloc(size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* ptr) noexcept { countedFree(ptr); }
void operator delete[](void* ptr) noexcept { countedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { countedFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { countedFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  countedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  countedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { countedFree(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  countedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  countedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  countedFree(ptr);
}
