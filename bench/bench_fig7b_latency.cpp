// Regenerates Figure 7(b): fingerpointing latency per injected fault.
//
// Paper setup: windows of 60 samples, and an alarm is raised only
// after ~3 consecutive anomalous windows ("it took at least 3
// consecutive windows to gain confidence in our detection"), which
// puts the latency floor for promptly-manifesting faults at roughly
// 200 seconds. The delayed manifestation of the reduce-side hangs
// (HADOOP-1152, HADOOP-2080) pushes their latencies far higher — the
// paper's headline observation for this figure.
//
// We reproduce that regime: non-overlapping 60-sample windows
// (slide = 60) and a 3-consecutive-window confidence filter.
#include "analysis/evaluation.h"
#include "common/strings.h"
#include "bench_util.h"

using namespace asdf;

namespace {

double filteredLatency(const analysis::AlarmSeries& series,
                       const analysis::GroundTruth& truth) {
  return analysis::fingerpointingLatency(
      analysis::requireConsecutive(series, 3), truth);
}

std::string fmt(double latency) {
  return latency < 0 ? "  n/a" : asdf::strformat("%5.0f", latency);
}

}  // namespace

int main(int argc, char** argv) {
  harness::ExperimentSpec base = bench::benchSpec(argc, argv);
  base.pipeline.windowSlide = 60;  // the paper's non-overlapping windows
  // Longer runs: three 60 s windows must fit after late manifestation.
  if (bench::flagValue(argc, argv, "duration", "").empty()) {
    base.duration = 1800.0;
  }

  struct Row {
    std::string fault;
    double bb, wb, all;
  };
  std::vector<Row> rows;
  bench::sweepFaults(base, [&](faults::FaultType fault,
                               const harness::ExperimentResult& result) {
    // Slack of half a window: the white-box path lags the black-box
    // path by a few seconds of log-finalization delay.
    const analysis::AlarmSeries combined = analysis::combineUnion(
        result.blackBox, result.whiteBox, base.pipeline.windowSlide / 2.0);
    rows.push_back({faults::faultName(fault),
                    filteredLatency(result.blackBox, result.truth),
                    filteredLatency(result.whiteBox, result.truth),
                    filteredLatency(combined, result.truth)});
  });

  std::printf("\nFigure 7(b): fingerpointing latency (seconds), %d slaves, "
              "%.0f s runs, 60 s windows, 3-window confidence\n",
              base.slaves, base.duration);
  bench::printRule();
  std::printf("%-14s %10s %10s %10s\n", "Fault", "black-box", "white-box",
              "combined");
  bench::printRule();
  double resourceLatency = 0.0;
  int resourceCount = 0;
  double hangLatency = 0.0;
  int hangCount = 0;
  for (const auto& r : rows) {
    std::printf("%-14s %10s %10s %10s\n", r.fault.c_str(),
                fmt(r.bb).c_str(), fmt(r.wb).c_str(), fmt(r.all).c_str());
    const bool hang = r.fault == "HADOOP-1152" || r.fault == "HADOOP-2080";
    const double best =
        r.all >= 0 ? r.all : std::max(std::max(r.bb, r.wb), -1.0);
    if (best < 0) continue;
    if (hang) {
      hangLatency += best;
      ++hangCount;
    } else {
      resourceLatency += best;
      ++resourceCount;
    }
  }
  bench::printRule();
  std::printf("(paper: ~200 s for most faults; several hundred seconds for "
              "the reduce hangs)\n");
  const double meanResource =
      resourceCount ? resourceLatency / resourceCount : -1.0;
  const double meanHang = hangCount ? hangLatency / hangCount : 1.0e9;
  std::printf("mean latency: promptly-manifesting faults %.0f s, reduce "
              "hangs %.0f s\n",
              meanResource, hangCount ? meanHang : -1.0);
  // Shape: prompt faults localize within a few windows; reduce hangs
  // take distinctly longer.
  const bool holds = resourceCount >= 3 && meanResource < 400.0 &&
                     hangCount >= 1 && meanHang > meanResource;
  std::printf("shape check (hangs slower than resource faults): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
