// Regenerates Table 4: RPC bandwidth for the three ASDF RPC types.
//
// Paper values (kB static overhead per node / kB/s per iteration):
//   sadc-tcp   1.98 / 1.22
//   hl-dn-tcp  2.04 / 0.31
//   hl-tt-tcp  2.04 / 0.32
//   TCP Sum    6.06 / 1.85
//
// Static overhead is the per-node traffic to create the connection;
// per-iteration bandwidth is the request/response traffic per second
// of collection. Our byte counts come from the actual wire-codec
// serialization of every fetched payload.
#include "bench_util.h"

using namespace asdf;

int main(int argc, char** argv) {
  harness::ExperimentSpec spec = bench::benchSpec(argc, argv);
  spec.fault.type = faults::FaultType::kNone;

  std::printf("Table 4: RPC bandwidth (%d slaves, %.0f s monitored)\n",
              spec.slaves, spec.duration);
  std::printf("training + running monitored fault-free trace...\n\n");
  const analysis::BlackBoxModel model = harness::trainModel(spec);
  const harness::ExperimentResult r = harness::runExperiment(spec, model);

  bench::printRule();
  std::printf("%-12s %18s %22s   %s\n", "RPC Type", "Static Ovh. (kB)",
              "Per-iter BW (kB/s)", "(paper)");
  bench::printRule();
  double sumStatic = 0.0;
  double sumIter = 0.0;
  auto paperRow = [](const std::string& name) -> const char* {
    if (name == "sadc-tcp") return "(1.98 / 1.22)";
    if (name == "hl-dn-tcp") return "(2.04 / 0.31)";
    if (name == "hl-tt-tcp") return "(2.04 / 0.32)";
    return "";
  };
  for (const auto& ch : r.rpcChannels) {
    std::printf("%-12s %18.2f %22.2f   %s\n", ch.name.c_str(),
                ch.staticOverheadKb, ch.perIterationKbPerSec,
                paperRow(ch.name));
    sumStatic += ch.staticOverheadKb;
    sumIter += ch.perIterationKbPerSec;
  }
  std::printf("%-12s %18.2f %22.2f   (6.06 / 1.85)\n", "TCP Sum", sumStatic,
              sumIter);
  bench::printRule();
  std::printf("aggregate for %d nodes: %.1f kB/s (paper: ~MB/s even at "
              "hundreds of nodes)\n",
              spec.slaves, sumIter * spec.slaves);
  // Shape: per-node monitoring costs a few kB/s, sadc dominating the
  // hadoop_log channels.
  bool sadcLargest = true;
  for (const auto& ch : r.rpcChannels) {
    if (ch.name != "sadc-tcp" &&
        ch.perIterationKbPerSec >
            r.rpcChannels.front().perIterationKbPerSec) {
      // channels() is sorted by name: hl-dn, hl-tt, sadc
    }
  }
  double sadcIter = 0.0;
  double hlIter = 0.0;
  for (const auto& ch : r.rpcChannels) {
    if (ch.name == "sadc-tcp") {
      sadcIter = ch.perIterationKbPerSec;
    } else {
      hlIter += ch.perIterationKbPerSec;
    }
  }
  sadcLargest = sadcIter > hlIter * 0.5;
  const bool holds = sumIter < 10.0 && sumStatic < 12.0 && sadcLargest;
  std::printf("shape check (few kB/s per node, sadc dominates): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
