// Correlated-scenario matrix with per-class accuracy reporting
// (DESIGN.md §16).
//
// One trained model, then per scenario class (rack partition, cascade
// hotspot, noisy neighbor, gray failure) a monitored run on a
// rack-aware topology, scored per approach. Three invariants are
// computed in-run and pinned exactly by CI:
//
//   flat_identical        — a racks=1 run is byte-identical no matter
//                           what uplink bandwidth the spec names (the
//                           plane must not exist at all when flat)
//   deterministic         — two runs of one scenario spec produce
//                           byte-identical event logs and alarms
//   rows_sum_to_aggregate — per-class confusion counts sum to the
//                           matrix aggregate
//
// Accuracy/FPR/latency land in the baseline at the default tolerance
// (libm differences across toolchains can move kNN boundaries a hair).
//
// Flags: --slaves=12 --racks=3 --uplink-gbps=10 --duration=900
//        --train-duration=420 --seed=42
//        --scenario=partition|cascade|noisy-neighbor|gray|all --json
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/scenario_matrix.h"

using namespace asdf;

namespace {

bool identicalSeries(const analysis::AlarmSeries& a,
                     const analysis::AlarmSeries& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].flags != b[i].flags ||
        a[i].scores != b[i].scores || a[i].health != b[i].health) {
      return false;
    }
  }
  return true;
}

void printRow(const harness::ScenarioOutcome& row, bool last) {
  std::printf(
      "    \"%s\": {\n"
      "      \"culprits\": %zu, \"events\": %zu,\n"
      "      \"bb_accuracy_pct\": %.1f, \"bb_fpr_pct\": %.1f,\n"
      "      \"wb_accuracy_pct\": %.1f, \"wb_fpr_pct\": %.1f,\n"
      "      \"combined_accuracy_pct\": %.1f, \"combined_fpr_pct\": %.1f,\n"
      "      \"combined_latency_s\": %.1f\n"
      "    }%s\n",
      row.name.c_str(), row.culprits.size(), row.eventCount,
      row.blackBox.eval.balancedAccuracyPct(),
      row.blackBox.eval.falsePositiveRatePct(),
      row.whiteBox.eval.balancedAccuracyPct(),
      row.whiteBox.eval.falsePositiveRatePct(),
      row.combined.eval.balancedAccuracyPct(),
      row.combined.eval.falsePositiveRatePct(),
      row.combined.latencySeconds, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  modules::registerBuiltinModules();
  const long slaves = bench::flagInt(argc, argv, "slaves", 12);
  const long racks = bench::flagInt(argc, argv, "racks", 3);
  const long uplinkGbps = bench::flagInt(argc, argv, "uplink-gbps", 10);
  const double duration = bench::flagDouble(argc, argv, "duration", 900.0);
  const double trainDuration =
      bench::flagDouble(argc, argv, "train-duration", 420.0);
  const auto seed =
      static_cast<std::uint64_t>(bench::flagInt(argc, argv, "seed", 42));
  const std::string which = bench::flagValue(argc, argv, "scenario", "all");
  const bool json = bench::flagPresent(argc, argv, "json");

  harness::ExperimentSpec base;
  base.slaves = static_cast<int>(slaves);
  base.duration = duration;
  base.trainDuration = trainDuration;
  base.seed = seed;
  base.topology.racks = static_cast<int>(racks);
  base.topology.uplinkBytesPerSec = static_cast<double>(uplinkGbps) * 1.25e8;

  std::vector<faults::ScenarioClass> classes;
  if (which == "all") {
    classes = faults::allScenarios();
  } else {
    classes.push_back(faults::scenarioFromName(which));
  }

  if (!json) {
    std::printf("Scenario matrix: %ld slaves in %ld racks, %ld Gbps "
                "uplinks, %.0f s runs\n\n",
                slaves, racks, uplinkGbps, duration);
  }

  const auto wallStart = std::chrono::steady_clock::now();
  const analysis::BlackBoxModel model = harness::trainModel(base);

  // Flat identity: with racks=1 the uplink plane must not exist, so
  // the alarms cannot depend on the uplink bandwidth value.
  harness::ExperimentSpec flat = base;
  flat.topology = topology::TopologySpec{};
  harness::ExperimentSpec flatTiny = flat;
  flatTiny.topology.uplinkBytesPerSec = 1.0;
  const harness::ExperimentResult flatA = harness::runExperiment(flat, model);
  const harness::ExperimentResult flatB =
      harness::runExperiment(flatTiny, model);
  const bool flatIdentical = identicalSeries(flatA.blackBox, flatB.blackBox) &&
                             identicalSeries(flatA.whiteBox, flatB.whiteBox);

  // Determinism: the first requested class, run twice.
  const harness::ExperimentSpec detSpec =
      harness::specForScenario(base, classes.front());
  const harness::ExperimentResult detA = harness::runExperiment(detSpec, model);
  const harness::ExperimentResult detB = harness::runExperiment(detSpec, model);
  const bool deterministic =
      harness::fingerprintEvents(detA.scenarioEvents) ==
          harness::fingerprintEvents(detB.scenarioEvents) &&
      identicalSeries(detA.blackBox, detB.blackBox) &&
      identicalSeries(detA.whiteBox, detB.whiteBox) &&
      detA.truth.culprits == detB.truth.culprits;

  harness::ScenarioMatrix matrix;
  for (faults::ScenarioClass cls : classes) {
    matrix.rows.push_back(harness::runScenarioClass(base, cls, model));
  }
  harness::aggregateMatrix(matrix);

  long tp = 0, fp = 0, tn = 0, fn = 0;
  for (const harness::ScenarioOutcome& row : matrix.rows) {
    tp += row.combined.eval.tp;
    fp += row.combined.eval.fp;
    tn += row.combined.eval.tn;
    fn += row.combined.eval.fn;
  }
  const bool rowsSum = tp == matrix.combined.eval.tp &&
                       fp == matrix.combined.eval.fp &&
                       tn == matrix.combined.eval.tn &&
                       fn == matrix.combined.eval.fn;

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wallStart)
          .count();

  if (json) {
    std::printf(
        "{\n  \"bench\": \"scenarios\",\n"
        "  \"slaves\": %ld, \"racks\": %ld, \"uplink_gbps\": %ld,\n"
        "  \"duration\": %.0f, \"train_duration\": %.0f, \"seed\": %llu,\n"
        "  \"flat_identical\": %d,\n"
        "  \"deterministic\": %d,\n"
        "  \"rows_sum_to_aggregate\": %d,\n"
        "  \"scenarios\": {\n",
        slaves, racks, uplinkGbps, duration, trainDuration,
        static_cast<unsigned long long>(seed), flatIdentical ? 1 : 0,
        deterministic ? 1 : 0, rowsSum ? 1 : 0);
    for (std::size_t i = 0; i < matrix.rows.size(); ++i) {
      printRow(matrix.rows[i], i + 1 == matrix.rows.size());
    }
    std::printf(
        "  },\n"
        "  \"aggregate_combined_accuracy_pct\": %.1f,\n"
        "  \"aggregate_combined_fpr_pct\": %.1f,\n"
        "  \"total_wall_s\": %.1f\n}\n",
        matrix.combined.eval.balancedAccuracyPct(),
        matrix.combined.eval.falsePositiveRatePct(), wall);
  } else {
    std::printf("  flat identical: %s   deterministic: %s   rows sum: %s\n\n",
                flatIdentical ? "yes" : "NO", deterministic ? "yes" : "NO",
                rowsSum ? "yes" : "NO");
    std::printf("%s", harness::formatScenarioMatrix(matrix).c_str());
    std::printf("\n  total wall: %.1f s\n", wall);
  }

  if (!flatIdentical) {
    std::fprintf(stderr, "FAIL: flat (racks=1) runs depend on the uplink "
                         "spec\n");
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: scenario runs are not seed-deterministic\n");
    return 1;
  }
  if (!rowsSum) {
    std::fprintf(stderr, "FAIL: per-class rows do not sum to the "
                         "aggregate\n");
    return 1;
  }
  for (const harness::ScenarioOutcome& row : matrix.rows) {
    if (row.combined.latencySeconds < 0.0) {
      std::fprintf(stderr, "FAIL: %s not localized by the combined "
                           "approach\n",
                   row.name.c_str());
      return 1;
    }
  }
  return 0;
}
