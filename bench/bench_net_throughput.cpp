// Live-wire throughput: frames/sec and MB/s through the full client
// encode -> loopback TCP -> server decode -> response -> client decode
// path, at 1 / 8 / 64 concurrent channels (connections doing blocking
// request/response ping-pong, like LiveTransport does).
//
// Usage:
//   bench_net_throughput [--seconds=2] [--channels=1,8,64]
//                        [--json=bench/baselines/net_throughput.json]
//
// The --json output is the committed baseline format: re-run on the
// same class of machine and compare before touching the frame codec or
// the event loop.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "metrics/catalog.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/tcp_server.h"
#include "rpc/wire.h"

namespace {

using namespace asdf;
using namespace asdf::net;

// Representative payloads: a kFetchSadc request and a sadc-snapshot
// sized response (64 node metrics + 18 NIC metrics + a handful of
// per-process vectors), the largest frame the collection plane sends
// every second.
std::vector<std::uint8_t> makeRequest() {
  rpc::Encoder enc;
  enc.putU32(1);
  enc.putDouble(1234.5);
  return encodeFrame(MsgType::kFetchSadc, enc);
}

rpc::Encoder makeResponse() {
  rpc::Encoder enc;
  enc.putDouble(1234.5);
  std::vector<double> node(metrics::kNodeMetricCount, 3.25);
  std::vector<double> nic(metrics::kNicMetricCount, 7.5);
  enc.putDoubleVector(node);
  enc.putDoubleVector(nic);
  enc.putU32(4);
  for (int p = 0; p < 4; ++p) {
    enc.putString("proc" + std::to_string(p));
    enc.putDoubleVector(std::vector<double>(metrics::kProcessMetricCount, 1.5));
  }
  return enc;
}

int connectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct Sample {
  int channels = 0;
  long frames = 0;       // request/response pairs completed
  double seconds = 0.0;
  double framesPerSec = 0.0;
  double mbPerSec = 0.0;  // both directions, header + payload
};

Sample runOne(int channels, double seconds, std::uint16_t port,
              std::size_t bytesPerExchange) {
  const std::vector<std::uint8_t> request = makeRequest();
  std::atomic<bool> stopFlag{false};
  std::vector<long> counts(static_cast<std::size_t>(channels), 0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    workers.emplace_back([&, c] {
      const int fd = connectLoopback(port);
      if (fd < 0) return;
      FrameDecoder decoder;
      std::uint8_t chunk[4096];
      Frame frame;
      while (!stopFlag.load(std::memory_order_relaxed)) {
        std::size_t off = 0;
        while (off < request.size()) {
          const ssize_t n =
              ::write(fd, request.data() + off, request.size() - off);
          if (n <= 0) {
            ::close(fd);
            return;
          }
          off += static_cast<std::size_t>(n);
        }
        while (!decoder.next(frame)) {
          const ssize_t n = ::read(fd, chunk, sizeof(chunk));
          if (n <= 0 || !decoder.feed(chunk, static_cast<std::size_t>(n))) {
            ::close(fd);
            return;
          }
        }
        ++counts[static_cast<std::size_t>(c)];
      }
      ::close(fd);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stopFlag.store(true);
  // Workers blocked in read() are woken by their own next response;
  // every exchange is short, so joining is prompt.
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Sample s;
  s.channels = channels;
  for (long n : counts) s.frames += n;
  s.seconds = elapsed;
  s.framesPerSec = static_cast<double>(s.frames) / elapsed;
  s.mbPerSec = s.framesPerSec * static_cast<double>(bytesPerExchange) / 1e6;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = bench::flagDouble(argc, argv, "seconds", 2.0);
  const std::string channelList =
      bench::flagValue(argc, argv, "channels", "1,8,64");
  const std::string jsonPath = bench::flagValue(argc, argv, "json", "");

  EventLoop loop;
  TcpServer server(loop, 0);
  const rpc::Encoder response = makeResponse();
  server.onFrame([&](TcpServer::Connection& conn, Frame&&) {
    conn.send(MsgType::kSadcData, response);
  });
  std::thread loopThread([&] { loop.run(); });

  const std::size_t requestWire = makeRequest().size();
  const std::size_t responseWire = kFrameHeaderBytes + response.size();
  const std::size_t bytesPerExchange = requestWire + responseWire;
  std::printf("net throughput: %zu B request + %zu B response per exchange, "
              "%.1f s per point\n",
              requestWire, responseWire, seconds);
  bench::printRule();
  std::printf("%10s %14s %12s %10s\n", "channels", "frames/s", "MB/s",
              "frames");
  bench::printRule();

  std::vector<Sample> samples;
  std::size_t pos = 0;
  while (pos < channelList.size()) {
    std::size_t comma = channelList.find(',', pos);
    if (comma == std::string::npos) comma = channelList.size();
    const int channels = std::atoi(channelList.substr(pos, comma - pos).c_str());
    pos = comma + 1;
    if (channels <= 0) continue;
    const Sample s = runOne(channels, seconds, server.port(), bytesPerExchange);
    samples.push_back(s);
    std::printf("%10d %14.0f %12.2f %10ld\n", s.channels, s.framesPerSec,
                s.mbPerSec, s.frames);
    std::fflush(stdout);
  }
  bench::printRule();
  std::printf("server: %ld frames served, %ld connections rejected\n",
              server.framesServed(), server.connectionsRejected());

  loop.stop();
  loopThread.join();

  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"net_throughput\",\n");
    std::fprintf(f, "  \"exchange_bytes\": %zu,\n", bytesPerExchange);
    std::fprintf(f, "  \"seconds_per_point\": %.2f,\n", seconds);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(f,
                   "    {\"channels\": %d, \"frames_per_sec\": %.0f, "
                   "\"mb_per_sec\": %.2f}%s\n",
                   s.channels, s.framesPerSec, s.mbPerSec,
                   i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", jsonPath.c_str());
  }
  return 0;
}
