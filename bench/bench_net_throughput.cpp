// Live-wire throughput: frames/sec, MB/s and per-exchange latency
// through the full client encode -> loopback TCP -> server decode ->
// response -> client decode path.
//
// Each channel is one concurrent TCP connection driven by its own
// client thread (so `--channels=64` really is 64 simultaneous
// connections hitting the server at once — see the note below).
// `--pipeline=K` is the fan-out mode: every connection keeps K
// requests outstanding, writing a batch of K frames in one syscall and
// draining K responses before the next batch. That is what saturates a
// sharded server — the corked write path answers a K-deep batch with
// one sendmsg — and it is how LiveTransport's fan-out collector
// actually drives the daemon.
//
// Usage:
//   bench_net_throughput [--seconds=2] [--channels=1,8,64] [--shards=N]
//                        [--pipeline=K] [--json=PATH]
//                        [--min-frames-per-sec=N]
//
// --min-frames-per-sec gates the LAST (largest) channel point: exit 1
// when it comes in under N. CI uses it to pin the sharded+pipelined
// configuration at >=5x the committed single-loop baseline
// (bench/baselines/net_throughput.json vs net_throughput_sharded.json).
//
// Measurement note (schema v2): v1 of this bench ran strict one-
// request-deep ping-pong per channel, so "channels" measured little
// beyond the single-exchange round trip multiplied by however many
// connections fit in one core's syscall budget. v2 keeps channel ==
// connection but adds pipelining and per-exchange p50/p99 latency
// (microseconds from batch write start to that response's decode) so
// the baseline gates tail latency, not just throughput.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "metrics/catalog.h"
#include "net/frame.h"
#include "net/shard_group.h"
#include "rpc/wire.h"

namespace {

using namespace asdf;
using namespace asdf::net;

// Representative payloads: a kFetchSadc request and a sadc-snapshot
// sized response (64 node metrics + 18 NIC metrics + a handful of
// per-process vectors), the largest frame the collection plane sends
// every second.
std::vector<std::uint8_t> makeRequest() {
  rpc::Encoder enc;
  enc.putU32(1);
  enc.putDouble(1234.5);
  return encodeFrame(MsgType::kFetchSadc, enc);
}

rpc::Encoder makeResponse() {
  rpc::Encoder enc;
  enc.putDouble(1234.5);
  std::vector<double> node(metrics::kNodeMetricCount, 3.25);
  std::vector<double> nic(metrics::kNicMetricCount, 7.5);
  enc.putDoubleVector(node);
  enc.putDoubleVector(nic);
  enc.putU32(4);
  for (int p = 0; p < 4; ++p) {
    enc.putString("proc" + std::to_string(p));
    enc.putDoubleVector(std::vector<double>(metrics::kProcessMetricCount, 1.5));
  }
  return enc;
}

int connectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct Sample {
  int channels = 0;
  long frames = 0;       // request/response pairs completed
  double seconds = 0.0;
  double framesPerSec = 0.0;
  double mbPerSec = 0.0;   // both directions, header + payload
  double p50Us = 0.0;      // per-exchange latency percentiles
  double p99Us = 0.0;
};

bool writeAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

Sample runOne(int channels, int pipeline, double seconds, std::uint16_t port,
              std::size_t bytesPerExchange) {
  const std::vector<std::uint8_t> request = makeRequest();
  // The fan-out batch: K identical requests, written in one syscall.
  std::vector<std::uint8_t> batch;
  for (int k = 0; k < pipeline; ++k) {
    batch.insert(batch.end(), request.begin(), request.end());
  }

  std::atomic<bool> stopFlag{false};
  std::vector<long> counts(static_cast<std::size_t>(channels), 0);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(channels));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    workers.emplace_back([&, c] {
      const int fd = connectLoopback(port);
      if (fd < 0) return;
      FrameDecoder decoder;
      std::uint8_t chunk[65536];
      Frame frame;
      std::vector<double>& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(4096);
      while (!stopFlag.load(std::memory_order_relaxed)) {
        const auto batchStart = std::chrono::steady_clock::now();
        if (!writeAll(fd, batch.data(), batch.size())) break;
        int pendingResponses = pipeline;
        while (pendingResponses > 0) {
          if (decoder.next(frame)) {
            --pendingResponses;
            ++counts[static_cast<std::size_t>(c)];
            // Latency is honest for pipelined exchanges: the clock for
            // every response in the batch starts when its request hit
            // the wire (they all left in the same write).
            if (lat.size() < (1u << 20)) {
              lat.push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - batchStart)
                                .count());
            }
            continue;
          }
          const ssize_t n = ::read(fd, chunk, sizeof(chunk));
          if (n <= 0 || !decoder.feed(chunk, static_cast<std::size_t>(n))) {
            ::close(fd);
            return;
          }
        }
      }
      ::close(fd);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stopFlag.store(true);
  // Workers blocked in read() are woken by their own in-flight batch;
  // every exchange is short, so joining is prompt.
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Sample s;
  s.channels = channels;
  for (long n : counts) s.frames += n;
  s.seconds = elapsed;
  s.framesPerSec = static_cast<double>(s.frames) / elapsed;
  s.mbPerSec = s.framesPerSec * static_cast<double>(bytesPerExchange) / 1e6;

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  if (!all.empty()) {
    const auto pct = [&all](double q) {
      const std::size_t idx = std::min(
          all.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(all.size())));
      std::nth_element(all.begin(),
                       all.begin() + static_cast<std::ptrdiff_t>(idx),
                       all.end());
      return all[idx];
    };
    s.p50Us = pct(0.50);
    s.p99Us = pct(0.99);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = bench::flagDouble(argc, argv, "seconds", 2.0);
  const std::string channelList =
      bench::flagValue(argc, argv, "channels", "1,8,64");
  const std::string jsonPath = bench::flagValue(argc, argv, "json", "");
  const int shards =
      std::max(1, static_cast<int>(bench::flagInt(argc, argv, "shards", 1)));
  const int pipeline =
      std::max(1, static_cast<int>(bench::flagInt(argc, argv, "pipeline", 1)));
  const double minFramesPerSec =
      bench::flagDouble(argc, argv, "min-frames-per-sec", 0.0);

  ShardGroup group(ShardGroupOptions{0, shards, /*preferReusePort=*/true});
  const rpc::Encoder response = makeResponse();
  for (int i = 0; i < group.shardCount(); ++i) {
    group.server(i).onFrame(
        [&response](TcpServer::Connection& conn, const Frame&) {
          conn.send(MsgType::kSadcData, response);
        });
  }
  std::thread serverThread([&group] { group.runOnCaller(); });

  const std::size_t requestWire = makeRequest().size();
  const std::size_t responseWire = kFrameHeaderBytes + response.size();
  const std::size_t bytesPerExchange = requestWire + responseWire;
  std::printf("net throughput: %zu B request + %zu B response per exchange, "
              "%.1f s per point, %d shard%s (%s), pipeline depth %d\n",
              requestWire, responseWire, seconds, group.shardCount(),
              group.shardCount() == 1 ? "" : "s",
              group.usingReusePort() ? "SO_REUSEPORT" : "single listener",
              pipeline);
  bench::printRule();
  std::printf("%10s %14s %10s %10s %10s %10s\n", "channels", "frames/s",
              "MB/s", "p50 us", "p99 us", "frames");
  bench::printRule();

  std::vector<Sample> samples;
  std::size_t pos = 0;
  while (pos < channelList.size()) {
    std::size_t comma = channelList.find(',', pos);
    if (comma == std::string::npos) comma = channelList.size();
    const int channels = std::atoi(channelList.substr(pos, comma - pos).c_str());
    pos = comma + 1;
    if (channels <= 0) continue;
    const Sample s =
        runOne(channels, pipeline, seconds, group.port(), bytesPerExchange);
    samples.push_back(s);
    std::printf("%10d %14.0f %10.2f %10.1f %10.1f %10ld\n", s.channels,
                s.framesPerSec, s.mbPerSec, s.p50Us, s.p99Us, s.frames);
    std::fflush(stdout);
  }
  bench::printRule();
  std::printf("server: %ld frames served, %ld connections rejected\n",
              group.framesServed(), group.connectionsRejected());

  group.stop();
  serverThread.join();

  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"net_throughput\",\n");
    std::fprintf(f, "  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"exchange_bytes\": %zu,\n", bytesPerExchange);
    std::fprintf(f, "  \"seconds_per_point\": %.2f,\n", seconds);
    std::fprintf(f, "  \"shards\": %d,\n", group.shardCount());
    std::fprintf(f, "  \"reuse_port\": %s,\n",
                 group.usingReusePort() ? "true" : "false");
    std::fprintf(f, "  \"pipeline\": %d,\n", pipeline);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(f,
                   "    {\"channels\": %d, \"frames_per_sec\": %.0f, "
                   "\"mb_per_sec\": %.2f, \"p50_us\": %.1f, "
                   "\"p99_us\": %.1f}%s\n",
                   s.channels, s.framesPerSec, s.mbPerSec, s.p50Us, s.p99Us,
                   i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", jsonPath.c_str());
  }

  if (minFramesPerSec > 0.0) {
    if (samples.empty() || samples.back().framesPerSec < minFramesPerSec) {
      std::fprintf(stderr,
                   "FAIL: %.0f frames/s at %d channels is below the "
                   "--min-frames-per-sec=%.0f gate\n",
                   samples.empty() ? 0.0 : samples.back().framesPerSec,
                   samples.empty() ? 0 : samples.back().channels,
                   minFramesPerSec);
      return 1;
    }
    std::printf("gate: %.0f frames/s >= %.0f required\n",
                samples.back().framesPerSec, minFramesPerSec);
  }
  return 0;
}
