// Regenerates Figure 7(a): balanced accuracy per injected fault for
// the black-box, white-box, and combined analyses.
//
// Paper shape (approximate bar heights):
//   - resource faults (CPUHog, DiskHog) detected well by both,
//     black-box strong;
//   - reduce-side hangs (HADOOP-1152, HADOOP-2080) hurt the black-box
//     badly (dormant faults), white-box clearly better there;
//   - combining black- and white-box yields a modest improvement in
//     the mean: paper means are 71% (BB), 78% (WB), 80% (combined).
#include "bench_util.h"

using namespace asdf;

int main(int argc, char** argv) {
  harness::ExperimentSpec base = bench::benchSpec(argc, argv);

  struct Row {
    std::string fault;
    double bb, wb, all;
  };
  std::vector<Row> rows;
  bench::sweepFaults(base, [&](faults::FaultType fault,
                               const harness::ExperimentResult& result) {
    const harness::ExperimentSummary s = harness::summarize(result);
    rows.push_back({faults::faultName(fault),
                    s.blackBox.eval.balancedAccuracyPct(),
                    s.whiteBox.eval.balancedAccuracyPct(),
                    s.combined.eval.balancedAccuracyPct()});
  });

  std::printf("\nFigure 7(a): balanced accuracy (%%), %d slaves, %.0f s "
              "runs, fault at %.0f s\n",
              base.slaves, base.duration, base.fault.startTime);
  bench::printRule();
  std::printf("%-14s %10s %10s %10s\n", "Fault", "black-box", "white-box",
              "combined");
  bench::printRule();
  double meanBb = 0.0;
  double meanWb = 0.0;
  double meanAll = 0.0;
  double hangWb = 0.0;
  double hangBb = 0.0;
  for (const auto& r : rows) {
    std::printf("%-14s %10.1f %10.1f %10.1f\n", r.fault.c_str(), r.bb, r.wb,
                r.all);
    meanBb += r.bb / rows.size();
    meanWb += r.wb / rows.size();
    meanAll += r.all / rows.size();
    if (r.fault == "HADOOP-1152" || r.fault == "HADOOP-2080") {
      hangWb += r.wb / 2.0;
      hangBb += r.bb / 2.0;
    }
  }
  bench::printRule();
  std::printf("%-14s %10.1f %10.1f %10.1f   (paper: 71 / 78 / 80)\n", "mean",
              meanBb, meanWb, meanAll);
  bench::printRule();
  // Shape: combined >= both individual means (modest improvement), and
  // the white-box beats the black-box on the dormant reduce hangs.
  const bool holds = meanAll + 1.0 >= meanBb && meanAll + 1.0 >= meanWb &&
                     hangWb > hangBb && meanAll > 60.0;
  std::printf("shape check (combined best on average; WB > BB on reduce "
              "hangs): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
