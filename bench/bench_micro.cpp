// Microbenchmarks (google-benchmark) for the performance-critical
// pieces: the log parser, the wire codec, the 1-NN classifier, k-means
// training, peer comparison, the event engine, and fpt-core DAG
// construction. These bound the per-second analysis budget an online
// deployment has (Section 2's "low fingerpointing latencies").
#include <benchmark/benchmark.h>

#include "analysis/bbmodel.h"
#include "analysis/kmeans.h"
#include "analysis/peercompare.h"
#include "common/ini.h"
#include "common/rng.h"
#include "core/fpt_core.h"
#include "hadooplog/parser.h"
#include "hadooplog/writer.h"
#include "harness/pipelines.h"
#include "metrics/os_model.h"
#include "metrics/sadc.h"
#include "modules/modules.h"
#include "rpc/wire.h"
#include "sim/engine.h"

namespace {

using namespace asdf;

void BM_LogParserThroughput(benchmark::State& state) {
  // Generate a realistic TaskTracker log, then measure parse rate.
  hadooplog::LogBuffer buf;
  hadooplog::TtLogWriter writer(&buf);
  Rng rng(1);
  double t = 0.0;
  std::vector<std::string> open;
  for (int i = 0; i < 20000; ++i) {
    t += rng.uniform(0.0, 0.4);
    if (open.size() < 6 && rng.bernoulli(0.5)) {
      open.push_back(
          hadooplog::makeTaskAttemptId(1, rng.bernoulli(0.6), i, 0));
      writer.launchTask(t, open.back());
    } else if (!open.empty()) {
      writer.taskDone(t, open.back());
      open.pop_back();
    }
  }
  const auto lines = buf.linesFrom(0);
  for (auto _ : state) {
    hadooplog::TtLogParser parser;
    parser.consume(lines);
    benchmark::DoNotOptimize(parser.poll(t + 10.0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(lines.size()));
}
BENCHMARK(BM_LogParserThroughput);

void BM_WireCodecSadcSnapshot(benchmark::State& state) {
  metrics::NodeOsModel model(metrics::NodeOsModel::Params{}, Rng(2));
  metrics::NodeActivity activity;
  activity.cpuUserCores = 2.0;
  activity.memUsedBytes = 3.0e9;
  const metrics::SadcSnapshot snap = model.tick(1.0, activity);
  for (auto _ : state) {
    rpc::Encoder enc;
    enc.putDouble(snap.time);
    enc.putDoubleVector(snap.node);
    enc.putDoubleVector(snap.nic);
    rpc::Decoder dec(enc.bytes());
    benchmark::DoNotOptimize(dec.getDouble());
    benchmark::DoNotOptimize(dec.getDoubleVector());
    benchmark::DoNotOptimize(dec.getDoubleVector());
  }
}
BENCHMARK(BM_WireCodecSadcSnapshot);

void BM_KnnClassify(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::vector<double>> training;
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> v(metrics::kFlatNodeVectorSize);
    for (auto& x : v) x = rng.uniform(0.0, 1000.0);
    training.push_back(std::move(v));
  }
  const analysis::BlackBoxModel model =
      analysis::trainBlackBoxModel(training, static_cast<int>(state.range(0)),
                                   rng);
  std::vector<double> probe(metrics::kFlatNodeVectorSize, 500.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.classify(probe));
  }
}
BENCHMARK(BM_KnnClassify)->Arg(4)->Arg(8)->Arg(16);

void BM_KMeansTraining(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::vector<double>> points;
  for (long i = 0; i < state.range(0); ++i) {
    std::vector<double> v(82);
    for (auto& x : v) x = rng.gaussian(0.0, 1.0);
    points.push_back(std::move(v));
  }
  analysis::KMeansOptions options;
  options.k = 8;
  for (auto _ : state) {
    Rng r(5);
    benchmark::DoNotOptimize(analysis::kmeans(points, options, r));
  }
}
BENCHMARK(BM_KMeansTraining)->Arg(1000)->Arg(5000);

void BM_BlackBoxCompare(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::vector<double>> hists;
  for (long n = 0; n < state.range(0); ++n) {
    std::vector<double> h(8);
    for (auto& x : h) x = rng.uniform(0.0, 60.0);
    hists.push_back(std::move(h));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::blackBoxCompare(hists, 60.0));
  }
}
BENCHMARK(BM_BlackBoxCompare)->Arg(8)->Arg(50)->Arg(200);

void BM_WhiteBoxCompare(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::vector<double>> means;
  std::vector<std::vector<double>> devs;
  for (long n = 0; n < state.range(0); ++n) {
    std::vector<double> m(8);
    std::vector<double> d(8);
    for (auto& x : m) x = rng.uniform(0.0, 4.0);
    for (auto& x : d) x = rng.uniform(0.0, 1.0);
    means.push_back(std::move(m));
    devs.push_back(std::move(d));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::whiteBoxCompare(means, devs, 3.0));
  }
}
BENCHMARK(BM_WhiteBoxCompare)->Arg(8)->Arg(50)->Arg(200);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEngine engine;
    long counter = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.scheduleAt(i * 0.001, [&counter] { ++counter; });
    }
    engine.runUntil(100.0);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_FptCoreDagBuild(benchmark::State& state) {
  modules::registerBuiltinModules();
  analysis::BlackBoxModel model;
  model.sigmas.assign(metrics::kFlatNodeVectorSize, 1.0);
  model.centroids.assign(8,
                         std::vector<double>(metrics::kFlatNodeVectorSize));
  harness::PipelineParams params;
  params.slaves = static_cast<int>(state.range(0));
  const std::string config = harness::buildCombinedConfig(params);
  for (auto _ : state) {
    sim::SimEngine engine;
    core::Environment env;
    env.provide("bb_model", &model);
    // Data modules need the rpc/sync services only at init; provide a
    // cluster-backed hub is heavyweight, so build the BB-only graph
    // minus sadc by measuring parse+construct cost via parseIni.
    benchmark::DoNotOptimize(parseIni(config));
  }
}
BENCHMARK(BM_FptCoreDagBuild)->Arg(8)->Arg(50);

void BM_OsModelTick(benchmark::State& state) {
  metrics::NodeOsModel model(metrics::NodeOsModel::Params{}, Rng(8));
  metrics::NodeActivity activity;
  activity.cpuUserCores = 2.0;
  activity.diskReadBytes = 1.0e7;
  activity.netRxBytes = 5.0e6;
  activity.memUsedBytes = 3.0e9;
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(model.tick(t, activity));
  }
}
BENCHMARK(BM_OsModelTick);

}  // namespace

BENCHMARK_MAIN();
