// Regenerates Figure 6(a): false-positive rate of the black-box
// analysis versus the L1 threshold, on problem-free traces.
//
// Paper shape: FP rate drops rapidly as the threshold rises from 0 and
// flattens beyond a threshold of about 60 (their chosen operating
// point). Reproduced by recording the per-window L1 scores of a
// fault-free run and re-thresholding offline (exactly equivalent to
// re-running the analysis at each threshold).
#include "bench_util.h"

using namespace asdf;

int main(int argc, char** argv) {
  harness::ExperimentSpec spec = bench::benchSpec(argc, argv);
  spec.fault.type = faults::FaultType::kNone;

  std::printf("Figure 6(a): black-box false-positive rate vs threshold\n");
  std::printf("(%d slaves, %.0f s problem-free GridMix trace)\n\n",
              spec.slaves, spec.duration);
  const analysis::BlackBoxModel model = harness::trainModel(spec);
  const harness::ExperimentResult r = harness::runExperiment(spec, model);

  bench::printRule();
  std::printf("%10s %22s\n", "Threshold", "False-positive rate (%)");
  bench::printRule();
  double at0 = -1.0;
  double at60 = -1.0;
  double at70 = -1.0;
  for (int threshold = 0; threshold <= 70; threshold += 5) {
    const auto swept = analysis::applyThreshold(r.blackBox, threshold);
    const double fpr = analysis::flaggedFractionPct(swept);
    std::printf("%10d %22.2f\n", threshold, fpr);
    if (threshold == 0) at0 = fpr;
    if (threshold == 60) at60 = fpr;
    if (threshold == 70) at70 = fpr;
  }
  bench::printRule();
  // Shape: steep drop from threshold 0, little improvement past 60.
  const bool holds = at0 > 5.0 * std::max(at60, 0.2) && at60 < 5.0 &&
                     at60 - at70 < 2.0;
  std::printf("shape check (steep drop, flat beyond ~60): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
