// Regenerates Figure 6(b): false-positive rate of the white-box
// analysis versus the threshold multiplier k, on problem-free traces.
//
// Paper shape: FP rates are under a fraction of a percent overall and
// show little improvement beyond k = 3 (their chosen operating point).
// Reproduced by recording per-window critical-k scores of a fault-free
// run and re-thresholding offline.
#include "bench_util.h"

using namespace asdf;

int main(int argc, char** argv) {
  harness::ExperimentSpec spec = bench::benchSpec(argc, argv);
  spec.fault.type = faults::FaultType::kNone;

  std::printf("Figure 6(b): white-box false-positive rate vs k\n");
  std::printf("(%d slaves, %.0f s problem-free GridMix trace)\n\n",
              spec.slaves, spec.duration);
  const analysis::BlackBoxModel model = harness::trainModel(spec);
  const harness::ExperimentResult r = harness::runExperiment(spec, model);

  bench::printRule();
  std::printf("%10s %22s\n", "k", "False-positive rate (%)");
  bench::printRule();
  double at0 = -1.0;
  double at3 = -1.0;
  double at5 = -1.0;
  for (double k = 0.0; k <= 5.01; k += 0.5) {
    const auto swept = analysis::applyThreshold(r.whiteBox, k);
    const double fpr = analysis::flaggedFractionPct(swept);
    std::printf("%10.1f %22.2f\n", k, fpr);
    if (k == 0.0) at0 = fpr;
    if (std::abs(k - 3.0) < 0.01) at3 = fpr;
    if (std::abs(k - 5.0) < 0.01) at5 = fpr;
  }
  bench::printRule();
  // Shape: monotone non-increasing, low at k=3, flat beyond.
  const bool holds = at3 <= at0 && at3 < 5.0 && at3 - at5 < 2.0;
  std::printf("shape check (low FPR at k=3, flat beyond): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
