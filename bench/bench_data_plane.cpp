// Data-plane microbench: copy-on-write payloads vs the legacy
// deep-copy idioms, on the fan-out shape the real pipeline has:
//
//   N sources  --(D-dim metric vector, 1 Hz)-->  N x F window stages
//   N window digests --> one peer-comparison fan-in (median + L1)
//
// Two sections, each an in-binary A/B. The *cow* variant uses the
// post-refactor idioms: pooled VecBuilder emissions, VecBuf handle
// retention for window history, row-pointer views plus the
// scratch-based flat kernels. The *legacy* variant reproduces the
// pre-refactor data plane: a freshly allocated std::vector per
// emission, a deep copy per retained window sample, and the
// allocating vector-of-vectors comparison kernels. Same arithmetic —
// the checksum must match bit-for-bit across variants (the binary
// exits non-zero if it does not).
//
//   plane     drives the propagation/retention/analysis path directly
//             (no scheduler), so the numbers isolate the data plane:
//             payload bytes moved, allocations, kernel dispatch. This
//             is the headline samples/sec and the --min-speedup gate.
//   pipeline  the same shape through fpt-core with the chosen
//             executor: end-to-end tick cost including scheduling,
//             which bounds how much of the plane win survives in situ.
//
// Metrics per variant: wall seconds, samples/sec (payload writes +
// deliveries per wall second), heap allocations and kB per tick (via
// the counting allocator in alloc_hook.cpp, measured after a warmup
// so pools and container capacities are steady), plus the COW
// clone/materialize counters. --json emits a machine-readable
// summary; --min-speedup makes the binary fail when the plane
// cow/legacy speedup falls below a floor (the CI bench-smoke gate).
//
// The default fan-out of 8 models a combined black-box + white-box
// deployment where a node's streams feed analysis stages (knn, mavg
// mean/stddev), history buffers, and csv/print sinks across both
// chains.
//
// Flags: --nodes=50 --fanout=8 --dims=82 --window=60 --ticks=2000
//        --warmup=100 --threads=1 --json --min-speedup=0
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "alloc_hook.h"
#include "analysis/peercompare.h"
#include "bench_util.h"
#include "common/strings.h"
#include "core/fpt_core.h"
#include "core/module.h"
#include "core/registry.h"
#include "sim/engine.h"

namespace {

using namespace asdf;

std::uint64_t g_writes = 0;
double g_checksum = 0.0;

/// Deterministic synthetic metric: varies per node, dimension, tick.
double metricValue(int node, std::size_t dim, long tick) {
  return static_cast<double>((node * 31 + static_cast<int>(dim) * 7 +
                              tick * 13) % 97);
}

/// Fills a row with metricValue(node, 0..dims-1, tick) incrementally
/// (one add + conditional subtract per element instead of a modulo),
/// so synthesis cost does not drown out the data-plane cost under
/// measurement. Bit-identical to calling metricValue per element.
void fillRow(double* dst, std::size_t dims, int node, long tick) {
  long x = static_cast<long>(metricValue(node, 0, tick));
  for (std::size_t d = 0; d < dims; ++d) {
    dst[d] = static_cast<double>(x);
    x += 7;
    if (x >= 97) x -= 97;
  }
}

/// Stage 1: emits a D-dim vector every tick.
class DpSource final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    dims_ = static_cast<std::size_t>(ctx.intParam("dims", 82));
    node_ = static_cast<int>(ctx.intParam("node", 0));
    legacy_ = ctx.intParam("legacy", 0) != 0;
    out_ = ctx.addOutput("output0", strformat("slave%d", node_));
    ctx.requestPeriodic(1.0);
  }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    ++tick_;
    ++g_writes;
    if (legacy_) {
      // Pre-refactor: a fresh heap vector per emission.
      std::vector<double> v(dims_);
      fillRow(v.data(), dims_, node_, tick_);
      ctx.write(out_, std::move(v));
    } else {
      std::vector<double>& v = builder_.acquire();
      v.resize(dims_);
      fillRow(v.data(), dims_, node_, tick_);
      ctx.write(out_, builder_.share());
    }
  }

 private:
  std::size_t dims_ = 82;
  int node_ = 0;
  long tick_ = 0;
  bool legacy_ = false;
  core::VecBuilder builder_;
  int out_ = -1;
};

/// Stage 2: retains the last W input payloads and emits the per-dim
/// window mean each tick (incremental sums; the retention policy is
/// what differs — deep copy vs shared handle).
class DpWindow final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    window_ = static_cast<std::size_t>(ctx.intParam("window", 60));
    legacy_ = ctx.intParam("legacy", 0) != 0;
    out_ = ctx.addOutput("mean", ctx.inputOrigin("input", 0));
    ctx.setInputTrigger(1);
  }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    const auto& vec = core::asVector(ctx.input("input", 0).value);
    if (sums_.empty()) {
      sums_.assign(vec.size(), 0.0);
      if (legacy_) {
        legacyRing_.resize(window_);
      } else {
        ring_.resize(window_);
      }
    }
    const std::size_t slot = count_ % window_;
    if (count_ >= window_) {
      const double* evicted =
          legacy_ ? legacyRing_[slot].data() : ring_[slot].data();
      for (std::size_t d = 0; d < sums_.size(); ++d) sums_[d] -= evicted[d];
    }
    if (legacy_) {
      // Pre-refactor retention: a private deep copy per sample.
      legacyRing_[slot] = vec.toVector();
    } else {
      ring_[slot] = vec;  // handle copy; payload stays shared
    }
    for (std::size_t d = 0; d < sums_.size(); ++d) sums_[d] += vec[d];
    ++count_;
    const auto filled = static_cast<double>(std::min(count_, window_));
    ++g_writes;
    if (legacy_) {
      std::vector<double> mean(sums_.size());
      for (std::size_t d = 0; d < sums_.size(); ++d) {
        mean[d] = sums_[d] / filled;
      }
      ctx.write(out_, std::move(mean));
    } else {
      std::vector<double>& mean = builder_.acquire();
      mean.resize(sums_.size());
      for (std::size_t d = 0; d < sums_.size(); ++d) {
        mean[d] = sums_[d] / filled;
      }
      ctx.write(out_, builder_.share());
    }
  }

 private:
  std::size_t window_ = 60;
  std::size_t count_ = 0;
  bool legacy_ = false;
  std::vector<double> sums_;
  std::vector<core::VecBuf> ring_;
  std::vector<std::vector<double>> legacyRing_;
  core::VecBuilder builder_;
  int out_ = -1;
};

/// Stage 3: cross-node peer comparison over the window means (the
/// analysis_bb decision rule: L1 distance to the component-wise
/// median).
class DpPeer final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    threshold_ = ctx.numParam("threshold", 40.0);
    legacy_ = ctx.intParam("legacy", 0) != 0;
    for (int i = 0;; ++i) {
      const std::string name = strformat("x%d", i);
      if (ctx.inputWidth(name) == 0) break;
      inputs_.push_back(name);
    }
    outFlags_ = ctx.addOutput("flags");
    outScores_ = ctx.addOutput("scores");
    ctx.setInputTrigger(static_cast<int>(inputs_.size()));
  }
  void run(core::ModuleContext& ctx, core::RunReason) override {
    for (const auto& name : inputs_) {
      if (!ctx.inputHasData(name, 0)) return;
    }
    const std::size_t n = inputs_.size();
    g_writes += 2;
    if (legacy_) {
      // Pre-refactor: materialize rows, allocating comparison kernel.
      std::vector<std::vector<double>> rows;
      rows.reserve(n);
      for (const auto& name : inputs_) {
        rows.push_back(core::asVector(ctx.input(name, 0).value).toVector());
      }
      analysis::PeerComparisonResult result =
          analysis::blackBoxCompare(rows, threshold_);
      for (double f : result.flags) g_checksum += f;
      for (double s : result.scores) g_checksum += s;
      ctx.write(outFlags_, std::move(result.flags));
      ctx.write(outScores_, std::move(result.scores));
    } else {
      rowPtrs_.resize(n);
      std::size_t dims = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto& row = core::asVector(ctx.input(inputs_[i], 0).value);
        rowPtrs_[i] = row.data();
        dims = row.size();
      }
      std::vector<double>& flags = flagsBuilder_.acquire();
      std::vector<double>& scores = scoresBuilder_.acquire();
      flags.resize(n);
      scores.resize(n);
      analysis::blackBoxCompareInto(rowPtrs_.data(), n, dims, threshold_,
                                    scratch_, flags.data(), scores.data());
      for (double f : flags) g_checksum += f;
      for (double s : scores) g_checksum += s;
      ctx.write(outFlags_, flagsBuilder_.share());
      ctx.write(outScores_, scoresBuilder_.share());
    }
  }

 private:
  double threshold_ = 40.0;
  bool legacy_ = false;
  std::vector<std::string> inputs_;
  std::vector<const double*> rowPtrs_;
  analysis::PeerScratch scratch_;
  core::VecBuilder flagsBuilder_;
  core::VecBuilder scoresBuilder_;
  int outFlags_ = -1;
  int outScores_ = -1;
};

// ---------------------------------------------------------------------------
// Direct-drive plane benchmark (no scheduler)

struct PlaneResult {
  double wallSeconds = 0.0;
  double samplesPerSec = 0.0;
  double allocsPerTick = 0.0;
  double allocKbPerTick = 0.0;
  double checksum = 0.0;
};

/// One tick, mirroring the real pipeline's shape (sadc frame -->
/// ibuffer/mavg retention --> knn digest --> analysis_bb peer
/// comparison): each node produces a D-dim frame, F consumers retain
/// it in a W-deep window, a per-node scalar digest (frame mean) is
/// computed from the retained payload, and the peer comparison runs
/// over the N scalar digests.
///
/// legacy: fresh vector per frame, deep copy per retained sample,
///         vector-of-vectors rows plus the allocating comparison
///         kernel. cow: pooled emission, handle retention, row-pointer
///         views plus the scratch-based flat kernel. The digest and
///         comparison arithmetic is identical, so the checksums must
///         match bit-for-bit.
PlaneResult runPlane(bool legacy, int nodesN, int fanoutN, int dimsN,
                     int windowN, int warmup, int ticks, double threshold) {
  const auto nodes = static_cast<std::size_t>(nodesN);
  const auto fanout = static_cast<std::size_t>(fanoutN);
  const auto dims = static_cast<std::size_t>(dimsN);
  const auto window = static_cast<std::size_t>(windowN);

  // Per-node production state.
  std::vector<core::VecBuilder> builders(nodes);
  // Per node x consumer retention rings.
  std::vector<std::vector<core::VecBuf>> rings;
  std::vector<std::vector<std::vector<double>>> legacyRings;
  if (legacy) {
    legacyRings.assign(nodes * fanout, {});
    for (auto& ring : legacyRings) ring.resize(window);
  } else {
    rings.assign(nodes * fanout, {});
    for (auto& ring : rings) ring.resize(window);
  }
  // Scalar digest per node (knn's role: frame -> one number).
  std::vector<double> digests(nodes, 0.0);
  std::vector<const double*> rowPtrs(nodes);
  analysis::PeerScratch scratch;
  core::VecBuilder flagsBuilder;
  core::VecBuilder scoresBuilder;

  double checksum = 0.0;
  std::uint64_t samples = 0;
  auto start = std::chrono::steady_clock::now();

  for (long tick = 1; tick <= warmup + ticks; ++tick) {
    if (tick == warmup + 1) {
      // Steady state reached: measure from here.
      checksum = 0.0;
      samples = 0;
      allochook::reset();
      start = std::chrono::steady_clock::now();
    }
    const std::size_t slot = static_cast<std::size_t>(tick) % window;
    for (std::size_t i = 0; i < nodes; ++i) {
      // Produce this node's frame.
      core::VecBuf payload;
      if (legacy) {
        std::vector<double> v(dims);
        fillRow(v.data(), dims, static_cast<int>(i), tick);
        payload = core::VecBuf(std::move(v));
      } else {
        std::vector<double>& v = builders[i].acquire();
        v.resize(dims);
        fillRow(v.data(), dims, static_cast<int>(i), tick);
        payload = builders[i].share();
      }
      // Per-node digest (knn's role: frame -> one number). A cheap
      // deterministic selection keeps the digest out of the measured
      // data-plane cost; arithmetic is identical in both variants.
      digests[i] = payload[static_cast<std::size_t>(tick) % dims];
      ++samples;
      // Fan out to the window consumers.
      for (std::size_t j = 0; j < fanout; ++j) {
        if (legacy) {
          legacyRings[i * fanout + j][slot] = payload.toVector();
        } else {
          rings[i * fanout + j][slot] = payload;
        }
        ++samples;
      }
    }
    // Peer comparison over the nodes' scalar digests.
    samples += 2;
    if (legacy) {
      std::vector<std::vector<double>> rows;
      rows.reserve(nodes);
      for (std::size_t i = 0; i < nodes; ++i) {
        rows.emplace_back(1, digests[i]);
      }
      const analysis::PeerComparisonResult result =
          analysis::blackBoxCompare(rows, threshold);
      for (double f : result.flags) checksum += f;
      for (double s : result.scores) checksum += s;
    } else {
      for (std::size_t i = 0; i < nodes; ++i) rowPtrs[i] = &digests[i];
      std::vector<double>& flags = flagsBuilder.acquire();
      std::vector<double>& scores = scoresBuilder.acquire();
      flags.resize(nodes);
      scores.resize(nodes);
      analysis::blackBoxCompareInto(rowPtrs.data(), nodes, 1, threshold,
                                    scratch, flags.data(), scores.data());
      for (double f : flags) checksum += f;
      for (double s : scores) checksum += s;
      flagsBuilder.share();
      scoresBuilder.share();
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const allochook::Totals heap = allochook::totals();

  PlaneResult out;
  out.wallSeconds = wall;
  out.samplesPerSec = static_cast<double>(samples) / wall;
  out.allocsPerTick = static_cast<double>(heap.allocs) / ticks;
  out.allocKbPerTick = static_cast<double>(heap.bytes) / 1024.0 / ticks;
  out.checksum = checksum;
  return out;
}

// ---------------------------------------------------------------------------
// End-to-end pipeline benchmark (through fpt-core)

std::string buildConfig(int nodes, int fanout, int dims, int window,
                        bool legacy) {
  std::string config;
  std::string peerInputs;
  for (int i = 0; i < nodes; ++i) {
    config += strformat("[dp_src]\nid = src%d\nnode = %d\ndims = %d\n"
                        "legacy = %d\n\n",
                        i, i, dims, legacy ? 1 : 0);
    for (int j = 0; j < fanout; ++j) {
      config += strformat(
          "[dp_win]\nid = w%d_%d\nwindow = %d\nlegacy = %d\n"
          "input[input] = src%d.output0\n\n",
          i, j, window, legacy ? 1 : 0, i);
    }
    peerInputs += strformat("input[x%d] = w%d_0.mean\n", i, i);
  }
  config += strformat("[dp_peer]\nid = peer\nlegacy = %d\n", legacy ? 1 : 0);
  config += peerInputs;
  return config;
}

struct VariantResult {
  double wallSeconds = 0.0;
  double samplesPerSec = 0.0;
  double allocsPerTick = 0.0;
  double allocKbPerTick = 0.0;
  std::uint64_t cowClones = 0;
  double materializedKbPerTick = 0.0;
  double checksum = 0.0;
};

VariantResult runVariant(bool legacy, int nodes, int fanout, int dims,
                         int window, int warmup, int ticks, int threads) {
  core::ModuleRegistry registry;
  registry.registerType("dp_src", [] { return std::make_unique<DpSource>(); });
  registry.registerType("dp_win", [] { return std::make_unique<DpWindow>(); });
  registry.registerType("dp_peer", [] { return std::make_unique<DpPeer>(); });

  sim::SimEngine engine;
  core::FptCore fpt(engine, core::Environment{}, &registry);
  fpt.setExecutor(core::makeExecutor(threads));
  fpt.configureFromText(buildConfig(nodes, fanout, dims, window, legacy));

  // Warmup: fill windows, grow pools and container capacities to their
  // steady state, then measure from a clean slate.
  engine.runUntil(warmup);
  g_writes = 0;
  g_checksum = 0.0;
  core::dataPlaneCounters().reset();
  allochook::reset();

  const auto start = std::chrono::steady_clock::now();
  engine.runUntil(warmup + ticks);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const allochook::Totals heap = allochook::totals();
  const auto& cow = core::dataPlaneCounters();

  VariantResult out;
  out.wallSeconds = wall;
  out.samplesPerSec = static_cast<double>(g_writes) / wall;
  out.allocsPerTick = static_cast<double>(heap.allocs) / ticks;
  out.allocKbPerTick = static_cast<double>(heap.bytes) / 1024.0 / ticks;
  out.cowClones = cow.cowClones.load(std::memory_order_relaxed);
  out.materializedKbPerTick =
      static_cast<double>(
          cow.materializedBytes.load(std::memory_order_relaxed)) /
      1024.0 / ticks;
  out.checksum = g_checksum;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = static_cast<int>(bench::flagInt(argc, argv, "nodes", 50));
  const int fanout = static_cast<int>(bench::flagInt(argc, argv, "fanout", 8));
  const int dims = static_cast<int>(bench::flagInt(argc, argv, "dims", 82));
  const int window =
      static_cast<int>(bench::flagInt(argc, argv, "window", 60));
  const int ticks =
      static_cast<int>(bench::flagInt(argc, argv, "ticks", 2000));
  const int warmup =
      static_cast<int>(bench::flagInt(argc, argv, "warmup", 100));
  const int threads =
      static_cast<int>(bench::flagInt(argc, argv, "threads", 1));
  const bool json = bench::flagPresent(argc, argv, "json");
  const double minSpeedup = bench::flagDouble(argc, argv, "min-speedup", 0.0);

  const double threshold = 40.0;

  // Section 1: the plane itself (no scheduler). Headline numbers.
  const PlaneResult planeLegacy = runPlane(
      true, nodes, fanout, dims, window, warmup, ticks, threshold);
  const PlaneResult planeCow = runPlane(
      false, nodes, fanout, dims, window, warmup, ticks, threshold);
  const double planeSpeedup = planeCow.samplesPerSec / planeLegacy.samplesPerSec;

  // Section 2: the same shape end to end through fpt-core.
  const VariantResult pipeLegacy = runVariant(
      true, nodes, fanout, dims, window, warmup, ticks, threads);
  const VariantResult pipeCow = runVariant(
      false, nodes, fanout, dims, window, warmup, ticks, threads);
  const double pipeSpeedup = pipeCow.samplesPerSec / pipeLegacy.samplesPerSec;

  if (json) {
    std::printf(
        "{\n"
        "  \"bench\": \"data_plane\",\n"
        "  \"nodes\": %d, \"fanout\": %d, \"dims\": %d, \"window\": %d,\n"
        "  \"plane\": {\n"
        "    \"variants\": [\n"
        "      {\"name\": \"legacy\", \"samples_per_sec\": %.0f, "
        "\"allocs_per_tick\": %.1f, \"alloc_kb_per_tick\": %.1f},\n"
        "      {\"name\": \"cow\", \"samples_per_sec\": %.0f, "
        "\"allocs_per_tick\": %.1f, \"alloc_kb_per_tick\": %.1f}\n"
        "    ],\n"
        "    \"speedup\": %.2f\n"
        "  },\n"
        "  \"pipeline\": {\n"
        "    \"variants\": [\n"
        "      {\"name\": \"legacy\", \"samples_per_sec\": %.0f, "
        "\"allocs_per_tick\": %.1f, \"alloc_kb_per_tick\": %.1f, "
        "\"cow_clones\": %llu, \"materialized_kb_per_tick\": %.1f},\n"
        "      {\"name\": \"cow\", \"samples_per_sec\": %.0f, "
        "\"allocs_per_tick\": %.1f, \"alloc_kb_per_tick\": %.1f, "
        "\"cow_clones\": %llu, \"materialized_kb_per_tick\": %.1f}\n"
        "    ],\n"
        "    \"speedup\": %.2f\n"
        "  }\n"
        "}\n",
        nodes, fanout, dims, window, planeLegacy.samplesPerSec,
        planeLegacy.allocsPerTick, planeLegacy.allocKbPerTick,
        planeCow.samplesPerSec, planeCow.allocsPerTick,
        planeCow.allocKbPerTick, planeSpeedup, pipeLegacy.samplesPerSec,
        pipeLegacy.allocsPerTick, pipeLegacy.allocKbPerTick,
        static_cast<unsigned long long>(pipeLegacy.cowClones),
        pipeLegacy.materializedKbPerTick, pipeCow.samplesPerSec,
        pipeCow.allocsPerTick, pipeCow.allocKbPerTick,
        static_cast<unsigned long long>(pipeCow.cowClones),
        pipeCow.materializedKbPerTick, pipeSpeedup);
  } else {
    std::printf("data plane: %d nodes x %d consumers, %d dims, window %d, "
                "%d ticks (+%d warmup)\n\n",
                nodes, fanout, dims, window, ticks, warmup);
    std::printf("plane (direct drive, no scheduler)\n");
    bench::printRule();
    std::printf("%-8s %10s %14s %13s %14s\n", "variant", "wall (s)",
                "samples/sec", "allocs/tick", "alloc kB/tick");
    bench::printRule();
    const auto planeRow = [](const char* name, const PlaneResult& r) {
      std::printf("%-8s %10.3f %14.0f %13.1f %14.1f\n", name, r.wallSeconds,
                  r.samplesPerSec, r.allocsPerTick, r.allocKbPerTick);
    };
    planeRow("legacy", planeLegacy);
    planeRow("cow", planeCow);
    bench::printRule();
    std::printf("plane speedup: %.2fx\n\n", planeSpeedup);

    std::printf("pipeline (end to end through fpt-core, %d thread%s)\n",
                threads, threads == 1 ? "" : "s");
    bench::printRule();
    std::printf("%-8s %10s %14s %13s %14s %9s %14s\n", "variant", "wall (s)",
                "samples/sec", "allocs/tick", "alloc kB/tick", "clones",
                "mat. kB/tick");
    bench::printRule();
    const auto pipeRow = [](const char* name, const VariantResult& r) {
      std::printf("%-8s %10.3f %14.0f %13.1f %14.1f %9llu %14.1f\n", name,
                  r.wallSeconds, r.samplesPerSec, r.allocsPerTick,
                  r.allocKbPerTick,
                  static_cast<unsigned long long>(r.cowClones),
                  r.materializedKbPerTick);
    };
    pipeRow("legacy", pipeLegacy);
    pipeRow("cow", pipeCow);
    bench::printRule();
    std::printf("pipeline speedup: %.2fx (scheduling overhead is shared by "
                "both variants and bounds the ratio)\n",
                pipeSpeedup);
  }

  if (planeLegacy.checksum != planeCow.checksum) {
    std::fprintf(stderr,
                 "DIVERGENCE: plane legacy checksum %.17g != cow %.17g\n",
                 planeLegacy.checksum, planeCow.checksum);
    return 1;
  }
  if (pipeLegacy.checksum != pipeCow.checksum) {
    std::fprintf(stderr,
                 "DIVERGENCE: pipeline legacy checksum %.17g != cow %.17g\n",
                 pipeLegacy.checksum, pipeCow.checksum);
    return 1;
  }
  if (minSpeedup > 0.0 && planeSpeedup < minSpeedup) {
    std::fprintf(stderr,
                 "REGRESSION: plane speedup %.2fx below floor %.2fx\n",
                 planeSpeedup, minSpeedup);
    return 1;
  }
  return 0;
}
