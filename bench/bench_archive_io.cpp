// Flight-recorder I/O throughput: records/s and MB/s through the full
// ArchiveWriter frame-encode -> unbuffered write -> seal path, then
// back through ArchiveReader's load + integrity check.
//
// Usage:
//   bench_archive_io [--records=20000] [--nodes=16]
//                    [--segment-bytes=1048576]
//                    [--json=bench/baselines/archive_io.json]
//
// The deterministic fields of the --json report (record counts, bytes
// per record, segments sealed, verification outcome) are pinned by CI
// with check_bench_regression --exact; the rate fields are
// machine-dependent and ignored there.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "archive/reader.h"
#include "archive/writer.h"
#include "bench_util.h"
#include "metrics/catalog.h"
#include "rpc/wire.h"

namespace {

using namespace asdf;

// A sadc-snapshot-sized payload — the largest record the collection
// plane archives every second (64 node + 18 NIC metrics plus four
// per-process vectors). `tick` varies the bytes so segments do not
// compress into pathological sameness at the page-cache level.
std::vector<std::uint8_t> makePayload(long tick) {
  rpc::Encoder enc;
  enc.putDouble(static_cast<double>(tick));
  std::vector<double> node(metrics::kNodeMetricCount,
                           3.25 + 0.001 * static_cast<double>(tick % 97));
  std::vector<double> nic(metrics::kNicMetricCount, 7.5);
  enc.putDoubleVector(node);
  enc.putDoubleVector(nic);
  enc.putU32(4);
  for (int p = 0; p < 4; ++p) {
    enc.putString("proc" + std::to_string(p));
    enc.putDoubleVector(
        std::vector<double>(metrics::kProcessMetricCount, 1.5));
  }
  return std::vector<std::uint8_t>(enc.bytes().begin(), enc.bytes().end());
}

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const long records = bench::flagInt(argc, argv, "records", 20000);
  const int nodes = static_cast<int>(bench::flagInt(argc, argv, "nodes", 16));
  const std::size_t segmentBytes = static_cast<std::size_t>(
      bench::flagInt(argc, argv, "segment-bytes", 1 << 20));
  const std::string jsonPath = bench::flagValue(argc, argv, "json", "");

  const std::string dir = "bench-archive-io.tmp";
  std::filesystem::remove_all(dir);

  archive::ArchiveMeta meta;
  meta.seed = 42;
  meta.slaves = nodes;
  meta.source = "bench";
  meta.duration = static_cast<double>(records / nodes);

  archive::ArchiveWriterOptions opts;
  opts.dir = dir;
  opts.maxSegmentBytes = segmentBytes;
  opts.maxSegmentSeconds = 1.0e18;  // rotate by size only

  std::printf("archive io: %ld records across %d nodes, %zu B segments\n",
              records, nodes, segmentBytes);
  bench::printRule();

  std::int64_t payloadBytes = 0;
  std::int64_t fileBytes = 0;
  long segmentsSealed = 0;
  double writeSeconds = 0.0;
  {
    archive::ArchiveWriter writer(opts, meta);
    const auto start = std::chrono::steady_clock::now();
    for (long i = 0; i < records; ++i) {
      const std::vector<std::uint8_t> payload = makePayload(i);
      rpc::CollectSample sample;
      sample.kind = rpc::CollectKind::kSadc;
      sample.node = static_cast<NodeId>(1 + i % nodes);
      sample.now = static_cast<double>(i / nodes);
      sample.attempts = 1;
      sample.ok = true;
      sample.payload = payload.data();
      sample.payloadSize = payload.size();
      writer.onSample(sample);
      payloadBytes += static_cast<std::int64_t>(payload.size());
    }
    writer.close();
    writeSeconds = secondsSince(start);
    fileBytes = writer.bytesWritten();
    segmentsSealed = writer.segmentsSealed();
  }

  const double writeRecsPerSec = static_cast<double>(records) / writeSeconds;
  const double writeMbPerSec =
      static_cast<double>(fileBytes) / writeSeconds / 1e6;
  std::printf("write: %8.0f records/s %8.2f MB/s (%lld file bytes, "
              "%ld segments)\n",
              writeRecsPerSec, writeMbPerSec,
              static_cast<long long>(fileBytes), segmentsSealed);

  const auto readStart = std::chrono::steady_clock::now();
  long recordsRead = 0;
  {
    archive::ArchiveReader reader(dir);
    recordsRead = static_cast<long>(reader.records().size());
  }
  const double readSeconds = secondsSince(readStart);
  const double readRecsPerSec = static_cast<double>(recordsRead) / readSeconds;
  const double readMbPerSec =
      static_cast<double>(fileBytes) / readSeconds / 1e6;
  std::printf("read:  %8.0f records/s %8.2f MB/s (%ld records)\n",
              readRecsPerSec, readMbPerSec, recordsRead);

  const auto verifyStart = std::chrono::steady_clock::now();
  const archive::ArchiveReader::VerifyResult verify =
      archive::ArchiveReader::verify(dir);
  const double verifySeconds = secondsSince(verifyStart);
  std::printf("verify: %s in %.3f s (%lld records, %zu torn tail bytes)\n",
              verify.ok ? "OK" : "CORRUPT", verifySeconds,
              static_cast<long long>(verify.recordsVerified),
              verify.tornTailBytes);
  bench::printRule();

  const std::int64_t bytesPerRecord = fileBytes / records;
  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"archive_io\",\n");
    std::fprintf(f, "  \"records\": %ld,\n", records);
    std::fprintf(f, "  \"payload_bytes\": %lld,\n",
                 static_cast<long long>(payloadBytes));
    std::fprintf(f, "  \"bytes_per_record\": %lld,\n",
                 static_cast<long long>(bytesPerRecord));
    std::fprintf(f, "  \"segments_sealed\": %ld,\n", segmentsSealed);
    std::fprintf(f, "  \"verify_ok\": %s,\n", verify.ok ? "true" : "false");
    std::fprintf(f, "  \"torn_tail_bytes\": %zu,\n", verify.tornTailBytes);
    std::fprintf(f, "  \"write_records_per_sec\": %.0f,\n", writeRecsPerSec);
    std::fprintf(f, "  \"write_mb_per_sec\": %.2f,\n", writeMbPerSec);
    std::fprintf(f, "  \"read_records_per_sec\": %.0f,\n", readRecsPerSec);
    std::fprintf(f, "  \"read_mb_per_sec\": %.2f\n", readMbPerSec);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("baseline written to %s\n", jsonPath.c_str());
  }

  std::filesystem::remove_all(dir);
  return (verify.ok && recordsRead == records) ? 0 : 1;
}
