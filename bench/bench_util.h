// Shared helpers for the table/figure regeneration binaries.
//
// Every bench binary runs standalone with defaults sized for a laptop
// (8 slaves, 20 simulated minutes) and accepts --nodes= / --duration= /
// --seed= flags to reproduce at the paper's scale (50 nodes).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "modules/modules.h"

namespace asdf::bench {

inline std::string flagValue(int argc, char** argv, const std::string& name,
                             const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// True when `--name` appears bare (no value) or as `--name=...`.
inline bool flagPresent(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  const std::string prefix = bare + "=";
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] ||
        std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return true;
    }
  }
  return false;
}

inline double flagDouble(int argc, char** argv, const std::string& name,
                         double fallback) {
  const std::string v = flagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atof(v.c_str());
}

inline long flagInt(int argc, char** argv, const std::string& name,
                    long fallback) {
  const std::string v = flagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atol(v.c_str());
}

/// The common experiment shape used by the figure benches.
inline harness::ExperimentSpec benchSpec(int argc, char** argv) {
  modules::registerBuiltinModules();
  harness::ExperimentSpec spec;
  spec.slaves = static_cast<int>(flagInt(argc, argv, "nodes", 8));
  spec.threads = static_cast<int>(flagInt(argc, argv, "threads", 1));
  spec.duration = flagDouble(argc, argv, "duration", 1200.0);
  spec.trainDuration = flagDouble(argc, argv, "train-duration", 400.0);
  spec.seed = static_cast<std::uint64_t>(flagInt(argc, argv, "seed", 42));
  spec.fault.node = static_cast<NodeId>(
      flagInt(argc, argv, "fault-node", spec.slaves / 2));
  spec.fault.startTime = flagDouble(argc, argv, "inject-at", 400.0);
  return spec;
}

/// Runs the six Table 2 faults (one run each, shared trained model)
/// and hands each result to `consume`.
template <typename Consumer>
void sweepFaults(const harness::ExperimentSpec& base, Consumer&& consume) {
  std::printf("training black-box model (fault-free %.0f s run)...\n",
              base.trainDuration);
  const analysis::BlackBoxModel model = harness::trainModel(base);
  for (faults::FaultType fault : faults::allFaults()) {
    harness::ExperimentSpec spec = base;
    spec.fault.type = fault;
    std::printf("running %s...\n", faults::faultName(fault));
    std::fflush(stdout);
    consume(fault, harness::runExperiment(spec, model));
  }
}

inline void printRule() {
  std::printf("-------------------------------------------------------------"
              "---------\n");
}

}  // namespace asdf::bench
