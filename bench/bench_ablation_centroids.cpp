// Ablation: number of k-means workload states (centroids).
//
// The black-box fingerpointer matches metric vectors against "a
// pre-determined set of centroid vectors" (Section 4.5) but the paper
// never reports how many. This ablation sweeps k and reports balanced
// accuracy on a CPUHog run and the fault-free FP rate: too few states
// cannot separate workloads (faults hide inside fat clusters), too
// many fragment the healthy behaviour (noise between equivalent
// states inflates the L1 distances).
#include "bench_util.h"

using namespace asdf;

int main(int argc, char** argv) {
  harness::ExperimentSpec base = bench::benchSpec(argc, argv);
  std::printf("Ablation: k-means centroid count (CPUHog + fault-free FPR; "
              "%d slaves)\n\n",
              base.slaves);
  bench::printRule();
  std::printf("%10s %16s %14s %12s\n", "centroids", "BB accuracy %",
              "FPR %", "latency s");
  bench::printRule();
  for (int k : {2, 4, 8, 16, 32}) {
    harness::ExperimentSpec spec = base;
    spec.centroids = k;
    const analysis::BlackBoxModel model = harness::trainModel(spec);

    spec.fault.type = faults::FaultType::kCpuHog;
    const harness::ExperimentSummary summary =
        harness::summarize(harness::runExperiment(spec, model));

    harness::ExperimentSpec clean = spec;
    clean.fault.type = faults::FaultType::kNone;
    const harness::ExperimentResult noFault =
        harness::runExperiment(clean, model);

    std::printf("%10d %16.1f %14.2f %12.0f\n", k,
                summary.blackBox.eval.balancedAccuracyPct(),
                analysis::flaggedFractionPct(noFault.blackBox),
                summary.blackBox.latencySeconds);
  }
  bench::printRule();
  std::printf("expected: a broad sweet spot around k = 8; degradation at "
              "the extremes\n");
  return 0;
}
