// Regenerates Table 3: CPU usage (% CPU time on a single core) and
// memory usage for the data-collection processes and the combined
// analysis process.
//
// Paper values (their 2009 EC2 testbed):
//   hadoop_log_rpcd  0.0245 % CPU   2.36 MB
//   sadc_rpcd        0.3553 % CPU   0.77 MB
//   fpt-core         0.8063 % CPU   5.11 MB
//
// We run the full monitored deployment on a fault-free GridMix trace
// and report the real CPU time spent inside each component divided by
// the simulated wall-clock (i.e. the cost if the monitored second took
// one real second, as it does in deployment). Absolute numbers differ
// from the paper's hardware; the property that must reproduce is the
// bound: every component far below 1% of one core.
#include "bench_util.h"

using namespace asdf;

int main(int argc, char** argv) {
  harness::ExperimentSpec spec = bench::benchSpec(argc, argv);
  spec.fault.type = faults::FaultType::kNone;

  std::printf("Table 3: monitoring overhead (%d slaves, %.0f s monitored)\n",
              spec.slaves, spec.duration);
  std::printf("training black-box model...\n");
  const analysis::BlackBoxModel model = harness::trainModel(spec);
  std::printf("running monitored fault-free trace...\n\n");
  const harness::ExperimentResult r = harness::runExperiment(spec, model);

  bench::printRule();
  std::printf("%-18s %12s %12s   %s\n", "Process", "% CPU", "Memory (MB)",
              "(paper: %CPU / MB)");
  bench::printRule();
  std::printf("%-18s %12.4f %12.2f   (0.0245 / 2.36)\n", "hadoop_log_rpcd",
              r.hadoopLogRpcdCpuPct, r.hadoopLogRpcdMemMb);
  std::printf("%-18s %12.4f %12.2f   (0.3553 / 0.77)\n", "sadc_rpcd",
              r.sadcRpcdCpuPct, r.sadcRpcdMemMb);
  std::printf("%-18s %12.4f %12.2f   (n/a: Section 5 extension)\n",
              "strace_rpcd", r.straceRpcdCpuPct, r.straceRpcdMemMb);
  std::printf("%-18s %12.4f %12.2f   (0.8063 / 5.11)\n", "fpt-core",
              r.fptCoreCpuPct, r.fptCoreMemMb);
  bench::printRule();
  const bool holds = r.hadoopLogRpcdCpuPct < 1.0 && r.sadcRpcdCpuPct < 1.0 &&
                     r.fptCoreCpuPct < 5.0 &&
                     r.fptCoreCpuPct > r.hadoopLogRpcdCpuPct;
  std::printf("shape check (all daemons <1%% CPU, fpt-core dominates): %s\n",
              holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
