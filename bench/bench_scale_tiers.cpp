// Scaling study for the aggregation tier: fingerpointing at 5k-10k
// nodes through pre-reduced partials (DESIGN.md §12).
//
// Three runs of the same seeded workload share one trained model:
//
//   flat          — every node's windows travel to one root merge
//   tiered serial — regional agg_bb/agg_wb reduce stages, 1 thread
//   tiered pool   — the same topology on the pooled executor
//
// The tier is only admissible if it changes nothing observable: all
// three runs must produce byte-identical alarm series (the property
// test_partials.cpp proves per-kernel, exercised here at cluster
// scale). On top of that, the per-node monitoring bandwidth must stay
// at the paper's "few kB/s" at every tier — the whole point of
// pre-reduction is that the root's inbound traffic scales with the
// number of regions, not the number of nodes.
//
// Defaults reproduce the 5000-node headline; CI bench-smoke runs
// --nodes=600 --duration=300 against a committed baseline. JSON keys
// use _kbps (not _per_sec) so check_bench_regression gates them, and
// alarms_identical is pinned with --exact.
//
// Flags: --nodes=5000, --aggregators=0 (0 = ~sqrt(nodes)),
//        --threads=4, --duration=600, --train-duration=300, --seed=42,
//        --max-kbps=2.5, --json
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace asdf;

namespace {

struct Run {
  harness::ExperimentResult result;
  double wallSeconds = 0.0;
};

Run timedRun(const harness::ExperimentSpec& spec,
             const analysis::BlackBoxModel& model) {
  Run run;
  const auto start = std::chrono::steady_clock::now();
  run.result = harness::runExperiment(spec, model);
  run.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return run;
}

bool identicalSeries(const analysis::AlarmSeries& a,
                     const analysis::AlarmSeries& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].flags != b[i].flags ||
        a[i].scores != b[i].scores || a[i].health != b[i].health) {
      return false;
    }
  }
  return true;
}

bool identicalAlarms(const harness::ExperimentResult& a,
                     const harness::ExperimentResult& b) {
  return identicalSeries(a.blackBox, b.blackBox) &&
         identicalSeries(a.whiteBox, b.whiteBox);
}

}  // namespace

int main(int argc, char** argv) {
  modules::registerBuiltinModules();
  const long nodes = bench::flagInt(argc, argv, "nodes", 5000);
  long aggregators = bench::flagInt(argc, argv, "aggregators", 0);
  const long threads = bench::flagInt(argc, argv, "threads", 4);
  const double duration = bench::flagDouble(argc, argv, "duration", 600.0);
  const double trainDuration =
      bench::flagDouble(argc, argv, "train-duration", 300.0);
  const auto seed =
      static_cast<std::uint64_t>(bench::flagInt(argc, argv, "seed", 42));
  const double maxKbps = bench::flagDouble(argc, argv, "max-kbps", 2.5);
  const bool json = bench::flagPresent(argc, argv, "json");

  if (aggregators <= 0) {
    aggregators = std::lround(std::sqrt(static_cast<double>(nodes)));
  }

  harness::ExperimentSpec spec;
  spec.slaves = static_cast<int>(nodes);
  spec.duration = duration;
  spec.trainDuration = trainDuration;
  spec.seed = seed;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = static_cast<NodeId>(nodes / 2);
  spec.fault.startTime = trainDuration;

  if (!json) {
    std::printf("Tier scaling: %ld nodes, %ld aggregators, %.0f s run\n\n",
                nodes, aggregators, duration);
  }

  const auto trainStart = std::chrono::steady_clock::now();
  const analysis::BlackBoxModel model = harness::trainModel(spec);
  const double trainWall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    trainStart)
          .count();

  const Run flat = timedRun(spec, model);

  harness::ExperimentSpec tieredSpec = spec;
  tieredSpec.tiered = true;
  tieredSpec.aggregators = static_cast<int>(aggregators);
  const Run tieredSerial = timedRun(tieredSpec, model);

  tieredSpec.threads = static_cast<int>(threads);
  const Run tieredPool = timedRun(tieredSpec, model);

  const bool identical = identicalAlarms(flat.result, tieredSerial.result) &&
                         identicalAlarms(flat.result, tieredPool.result);

  // Per-node bandwidth by tier, from the tiered run's Table 4 report:
  // tier 1 is leaf collection (sadc + log rows), tier 2 the pre-reduced
  // region summaries.
  double tierKbps[3] = {0.0, 0.0, 0.0};
  for (const harness::RpcChannelReport& ch : tieredSerial.result.rpcChannels) {
    if (ch.tier >= 1 && ch.tier <= 2) tierKbps[ch.tier] += ch.perIterationKbPerSec;
  }
  const bool bandwidthOk = tierKbps[1] <= maxKbps && tierKbps[2] <= maxKbps;

  const harness::ExperimentSummary summary =
      harness::summarize(tieredSerial.result);

  if (json) {
    std::printf(
        "{\n  \"bench\": \"scale_tiers\",\n"
        "  \"nodes\": %ld, \"aggregators\": %ld, \"threads\": %ld,\n"
        "  \"duration\": %.0f, \"train_duration\": %.0f, \"seed\": %llu,\n"
        "  \"alarms_identical\": %d,\n"
        "  \"bb_accuracy_pct\": %.1f, \"wb_accuracy_pct\": %.1f,\n"
        "  \"tier1_per_node_kbps\": %.3f, \"tier2_per_node_kbps\": %.3f,\n"
        "  \"train_wall_s\": %.1f, \"flat_wall_s\": %.1f,\n"
        "  \"tiered_serial_wall_s\": %.1f, \"tiered_pool_wall_s\": %.1f\n"
        "}\n",
        nodes, aggregators, threads, duration, trainDuration,
        static_cast<unsigned long long>(seed), identical ? 1 : 0,
        summary.blackBox.eval.balancedAccuracyPct(),
        summary.whiteBox.eval.balancedAccuracyPct(), tierKbps[1], tierKbps[2],
        trainWall, flat.wallSeconds, tieredSerial.wallSeconds,
        tieredPool.wallSeconds);
  } else {
    std::printf("  alarms identical (flat / tiered serial / tiered pool): "
                "%s\n",
                identical ? "yes" : "NO");
    std::printf("  accuracy: %.1f%% black-box, %.1f%% white-box\n",
                summary.blackBox.eval.balancedAccuracyPct(),
                summary.whiteBox.eval.balancedAccuracyPct());
    std::printf("  per-node bandwidth: %.3f kB/s tier 1, %.3f kB/s tier 2 "
                "(budget %.1f)\n",
                tierKbps[1], tierKbps[2], maxKbps);
    std::printf("  wall: train %.1f s, flat %.1f s, tiered serial %.1f s, "
                "tiered pool %.1f s\n",
                trainWall, flat.wallSeconds, tieredSerial.wallSeconds,
                tieredPool.wallSeconds);
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: tiered alarms diverge from the flat topology\n");
    return 1;
  }
  if (!bandwidthOk) {
    std::fprintf(stderr,
                 "FAIL: per-node bandwidth over %.1f kB/s budget "
                 "(tier 1 %.3f, tier 2 %.3f)\n",
                 maxKbps, tierKbps[1], tierKbps[2]);
    return 1;
  }
  return 0;
}
