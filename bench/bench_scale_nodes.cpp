// Scaling study: accuracy and monitoring cost versus cluster size.
//
// The paper evaluates at 50 slaves and argues the aggregate monitoring
// bandwidth stays "on the order of 1 MB/s even when monitoring
// hundreds of nodes". This bench sweeps the slave count (median peer
// comparison should *improve* with more peers, per-node monitoring
// cost should stay flat, aggregate bandwidth should grow linearly).
//
// The default sweep stops at 50 slaves (the paper's scale); pass
// --max-nodes=500 to extend through the 100/250/500 points, or
// --nodes=N to run a single cluster size (what the CI bench-smoke job
// does at 100 nodes with a reduced duration). --json emits the
// machine-independent metrics (accuracies, bandwidth) plus wall time
// for scripts/check_bench_regression.
//
// Flags: --max-nodes=50 | --nodes=N, --duration=1000,
//        --train-duration=350, --seed=42, --json
#include <chrono>
#include <vector>

#include "bench_util.h"

using namespace asdf;

namespace {

struct Point {
  int slaves = 0;
  double bbAccuracy = 0.0;
  double wbAccuracy = 0.0;
  double perNodeKb = 0.0;
  double aggregateKb = 0.0;
  double wallSeconds = 0.0;
};

Point runPoint(int slaves, double duration, double trainDuration,
               std::uint64_t seed) {
  harness::ExperimentSpec spec;
  spec.slaves = slaves;
  spec.duration = duration;
  spec.trainDuration = trainDuration;
  spec.seed = seed;
  spec.fault.type = faults::FaultType::kCpuHog;
  spec.fault.node = slaves / 2;
  spec.fault.startTime = trainDuration;
  const auto start = std::chrono::steady_clock::now();
  const analysis::BlackBoxModel model = harness::trainModel(spec);
  const harness::ExperimentResult result = harness::runExperiment(spec, model);
  const harness::ExperimentSummary summary = harness::summarize(result);
  Point p;
  p.slaves = slaves;
  p.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  p.bbAccuracy = summary.blackBox.eval.balancedAccuracyPct();
  p.wbAccuracy = summary.whiteBox.eval.balancedAccuracyPct();
  for (const auto& ch : result.rpcChannels) {
    p.perNodeKb += ch.perIterationKbPerSec;
  }
  p.aggregateKb = p.perNodeKb * slaves;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  modules::registerBuiltinModules();
  const long maxNodes = bench::flagInt(argc, argv, "max-nodes", 50);
  const long onlyNodes = bench::flagInt(argc, argv, "nodes", 0);
  const double duration = bench::flagDouble(argc, argv, "duration", 1000.0);
  const double trainDuration =
      bench::flagDouble(argc, argv, "train-duration", 350.0);
  const auto seed =
      static_cast<std::uint64_t>(bench::flagInt(argc, argv, "seed", 42));
  const bool json = bench::flagPresent(argc, argv, "json");

  std::vector<int> sweep;
  if (onlyNodes > 0) {
    sweep.push_back(static_cast<int>(onlyNodes));
  } else {
    for (int slaves : {6, 12, 24, 50, 100, 250, 500}) {
      if (slaves > maxNodes) break;
      sweep.push_back(slaves);
    }
  }

  if (!json) {
    std::printf("Scaling: cluster size sweep (CPUHog, %zu points, "
                "%.0f s runs)\n\n",
                sweep.size(), duration);
    bench::printRule();
    std::printf("%8s %14s %14s %18s %16s %10s\n", "slaves", "BB accuracy %",
                "WB accuracy %", "per-node kB/s", "aggregate kB/s",
                "wall (s)");
    bench::printRule();
  }

  std::vector<Point> points;
  for (int slaves : sweep) {
    points.push_back(runPoint(slaves, duration, trainDuration, seed));
    const Point& p = points.back();
    if (!json) {
      std::printf("%8d %14.1f %14.1f %18.2f %16.1f %10.1f\n", p.slaves,
                  p.bbAccuracy, p.wbAccuracy, p.perNodeKb, p.aggregateKb,
                  p.wallSeconds);
      std::fflush(stdout);
    }
  }

  if (json) {
    std::printf("{\n  \"bench\": \"scale_nodes\",\n"
                "  \"duration\": %.0f, \"train_duration\": %.0f, "
                "\"seed\": %llu,\n  \"points\": [\n",
                duration, trainDuration,
                static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::printf("    {\"slaves\": %d, \"bb_accuracy_pct\": %.1f, "
                  "\"wb_accuracy_pct\": %.1f, \"per_node_kb_per_sec\": %.2f, "
                  "\"aggregate_kb_per_sec\": %.1f, \"wall_s\": %.1f}%s\n",
                  p.slaves, p.bbAccuracy, p.wbAccuracy, p.perNodeKb,
                  p.aggregateKb, p.wallSeconds,
                  i + 1 < points.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    bench::printRule();
    std::printf("expected: flat per-node cost, linear aggregate, accuracy "
                "stable or improving with more peers\n");
  }
  return 0;
}
