// Scaling study: accuracy and monitoring cost versus cluster size.
//
// The paper evaluates at 50 slaves and argues the aggregate monitoring
// bandwidth stays "on the order of 1 MB/s even when monitoring
// hundreds of nodes". This bench sweeps the slave count (median peer
// comparison should *improve* with more peers, per-node monitoring
// cost should stay flat, aggregate bandwidth should grow linearly).
// Run with --max-nodes=50 to reproduce the paper's scale (slower).
#include "bench_util.h"

using namespace asdf;

int main(int argc, char** argv) {
  modules::registerBuiltinModules();
  const long maxNodes = bench::flagInt(argc, argv, "max-nodes", 50);
  std::printf("Scaling: cluster size sweep (CPUHog, up to %ld slaves)\n\n",
              maxNodes);
  bench::printRule();
  std::printf("%8s %14s %14s %18s %16s\n", "slaves", "BB accuracy %",
              "WB accuracy %", "per-node kB/s", "aggregate kB/s");
  bench::printRule();
  for (int slaves : {6, 12, 24, 50}) {
    if (slaves > maxNodes) break;
    harness::ExperimentSpec spec;
    spec.slaves = slaves;
    spec.duration = 1000.0;
    spec.trainDuration = 350.0;
    spec.seed = 42;
    spec.fault.type = faults::FaultType::kCpuHog;
    spec.fault.node = slaves / 2;
    spec.fault.startTime = 350.0;
    const analysis::BlackBoxModel model = harness::trainModel(spec);
    const harness::ExperimentResult result =
        harness::runExperiment(spec, model);
    const harness::ExperimentSummary summary = harness::summarize(result);
    double perNode = 0.0;
    for (const auto& ch : result.rpcChannels) {
      perNode += ch.perIterationKbPerSec;
    }
    std::printf("%8d %14.1f %14.1f %18.2f %16.1f\n", slaves,
                summary.blackBox.eval.balancedAccuracyPct(),
                summary.whiteBox.eval.balancedAccuracyPct(), perNode,
                perNode * slaves);
  }
  bench::printRule();
  std::printf("expected: flat per-node cost, linear aggregate, accuracy "
              "stable or improving with more peers\n");
  return 0;
}
