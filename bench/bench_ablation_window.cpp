// Ablation: analysis window size and slide.
//
// The paper fixes windowSize = 60 samples (Section 4.9) without
// justifying it; this ablation sweeps the window and slide and reports
// detection quality for a CPUHog run plus the fault-free FP rate, to
// show where the paper's operating point sits: short windows are noisy
// (high FPR), long windows dilute faults and stretch latency.
#include "bench_util.h"

using namespace asdf;

int main(int argc, char** argv) {
  harness::ExperimentSpec base = bench::benchSpec(argc, argv);
  std::printf("Ablation: window size/slide (CPUHog on slave %d + "
              "fault-free FPR; %d slaves)\n\n",
              base.fault.node, base.slaves);
  const analysis::BlackBoxModel model = harness::trainModel(base);

  bench::printRule();
  std::printf("%8s %8s %14s %14s %12s %12s\n", "window", "slide",
              "BB accuracy %", "FPR %", "latency s", "windows");
  bench::printRule();

  struct Point {
    int window, slide;
  };
  for (const Point p : {Point{15, 5}, Point{30, 5}, Point{60, 5},
                        Point{60, 30}, Point{60, 60}, Point{120, 10}}) {
    harness::ExperimentSpec faulty = base;
    faulty.pipeline.windowSize = p.window;
    faulty.pipeline.windowSlide = p.slide;
    faulty.fault.type = faults::FaultType::kCpuHog;
    // The L1 threshold is in units of window samples; scale the
    // paper's 60-sample operating point proportionally.
    faulty.pipeline.bbThreshold = 60.0 * p.window / 60.0;
    const harness::ExperimentResult withFault =
        harness::runExperiment(faulty, model);
    const harness::ExperimentSummary summary =
        harness::summarize(withFault);

    harness::ExperimentSpec clean = faulty;
    clean.fault.type = faults::FaultType::kNone;
    const harness::ExperimentResult noFault =
        harness::runExperiment(clean, model);

    std::printf("%8d %8d %14.1f %14.2f %12.0f %12zu\n", p.window, p.slide,
                summary.blackBox.eval.balancedAccuracyPct(),
                analysis::flaggedFractionPct(noFault.blackBox),
                summary.blackBox.latencySeconds, withFault.blackBox.size());
  }
  bench::printRule();
  std::printf("expected: FPR shrinks with window size; latency grows with "
              "slide; the paper's 60-sample window balances both\n");
  return 0;
}
