file(REMOVE_RECURSE
  "CMakeFiles/asdf_modules.dir/analysis_bb_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/analysis_bb_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/analysis_mad_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/analysis_mad_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/analysis_wb_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/analysis_wb_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/csv_sink_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/csv_sink_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/hadoop_log_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/hadoop_log_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/ibuffer_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/ibuffer_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/knn_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/knn_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/mavgvec_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/mavgvec_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/mitigate_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/mitigate_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/print_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/print_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/register.cpp.o"
  "CMakeFiles/asdf_modules.dir/register.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/sadc_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/sadc_module.cpp.o.d"
  "CMakeFiles/asdf_modules.dir/strace_module.cpp.o"
  "CMakeFiles/asdf_modules.dir/strace_module.cpp.o.d"
  "libasdf_modules.a"
  "libasdf_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
