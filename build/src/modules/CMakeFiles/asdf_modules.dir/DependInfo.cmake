
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modules/analysis_bb_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/analysis_bb_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/analysis_bb_module.cpp.o.d"
  "/root/repo/src/modules/analysis_mad_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/analysis_mad_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/analysis_mad_module.cpp.o.d"
  "/root/repo/src/modules/analysis_wb_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/analysis_wb_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/analysis_wb_module.cpp.o.d"
  "/root/repo/src/modules/csv_sink_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/csv_sink_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/csv_sink_module.cpp.o.d"
  "/root/repo/src/modules/hadoop_log_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/hadoop_log_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/hadoop_log_module.cpp.o.d"
  "/root/repo/src/modules/ibuffer_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/ibuffer_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/ibuffer_module.cpp.o.d"
  "/root/repo/src/modules/knn_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/knn_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/knn_module.cpp.o.d"
  "/root/repo/src/modules/mavgvec_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/mavgvec_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/mavgvec_module.cpp.o.d"
  "/root/repo/src/modules/mitigate_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/mitigate_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/mitigate_module.cpp.o.d"
  "/root/repo/src/modules/print_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/print_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/print_module.cpp.o.d"
  "/root/repo/src/modules/register.cpp" "src/modules/CMakeFiles/asdf_modules.dir/register.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/register.cpp.o.d"
  "/root/repo/src/modules/sadc_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/sadc_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/sadc_module.cpp.o.d"
  "/root/repo/src/modules/strace_module.cpp" "src/modules/CMakeFiles/asdf_modules.dir/strace_module.cpp.o" "gcc" "src/modules/CMakeFiles/asdf_modules.dir/strace_module.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/asdf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/asdf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/asdf_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/hadooplog/CMakeFiles/asdf_hadooplog.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asdf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/syscalls/CMakeFiles/asdf_syscalls.dir/DependInfo.cmake"
  "/root/repo/build/src/hadoop/CMakeFiles/asdf_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asdf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
