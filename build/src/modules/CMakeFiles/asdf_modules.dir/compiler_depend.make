# Empty compiler generated dependencies file for asdf_modules.
# This may be replaced when dependencies are built.
