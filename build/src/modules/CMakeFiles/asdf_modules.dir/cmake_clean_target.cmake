file(REMOVE_RECURSE
  "libasdf_modules.a"
)
