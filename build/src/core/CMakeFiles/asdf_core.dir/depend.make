# Empty dependencies file for asdf_core.
# This may be replaced when dependencies are built.
