
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/environment.cpp" "src/core/CMakeFiles/asdf_core.dir/environment.cpp.o" "gcc" "src/core/CMakeFiles/asdf_core.dir/environment.cpp.o.d"
  "/root/repo/src/core/fpt_core.cpp" "src/core/CMakeFiles/asdf_core.dir/fpt_core.cpp.o" "gcc" "src/core/CMakeFiles/asdf_core.dir/fpt_core.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "src/core/CMakeFiles/asdf_core.dir/graph.cpp.o" "gcc" "src/core/CMakeFiles/asdf_core.dir/graph.cpp.o.d"
  "/root/repo/src/core/realtime.cpp" "src/core/CMakeFiles/asdf_core.dir/realtime.cpp.o" "gcc" "src/core/CMakeFiles/asdf_core.dir/realtime.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/asdf_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/asdf_core.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asdf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
