file(REMOVE_RECURSE
  "libasdf_core.a"
)
