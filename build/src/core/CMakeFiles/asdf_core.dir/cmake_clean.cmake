file(REMOVE_RECURSE
  "CMakeFiles/asdf_core.dir/environment.cpp.o"
  "CMakeFiles/asdf_core.dir/environment.cpp.o.d"
  "CMakeFiles/asdf_core.dir/fpt_core.cpp.o"
  "CMakeFiles/asdf_core.dir/fpt_core.cpp.o.d"
  "CMakeFiles/asdf_core.dir/graph.cpp.o"
  "CMakeFiles/asdf_core.dir/graph.cpp.o.d"
  "CMakeFiles/asdf_core.dir/realtime.cpp.o"
  "CMakeFiles/asdf_core.dir/realtime.cpp.o.d"
  "CMakeFiles/asdf_core.dir/registry.cpp.o"
  "CMakeFiles/asdf_core.dir/registry.cpp.o.d"
  "libasdf_core.a"
  "libasdf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
