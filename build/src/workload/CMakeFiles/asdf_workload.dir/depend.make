# Empty dependencies file for asdf_workload.
# This may be replaced when dependencies are built.
