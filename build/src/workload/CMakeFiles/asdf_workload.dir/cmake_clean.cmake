file(REMOVE_RECURSE
  "CMakeFiles/asdf_workload.dir/gridmix.cpp.o"
  "CMakeFiles/asdf_workload.dir/gridmix.cpp.o.d"
  "libasdf_workload.a"
  "libasdf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
