file(REMOVE_RECURSE
  "libasdf_workload.a"
)
