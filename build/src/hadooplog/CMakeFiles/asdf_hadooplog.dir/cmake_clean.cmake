file(REMOVE_RECURSE
  "CMakeFiles/asdf_hadooplog.dir/log_buffer.cpp.o"
  "CMakeFiles/asdf_hadooplog.dir/log_buffer.cpp.o.d"
  "CMakeFiles/asdf_hadooplog.dir/parser.cpp.o"
  "CMakeFiles/asdf_hadooplog.dir/parser.cpp.o.d"
  "CMakeFiles/asdf_hadooplog.dir/states.cpp.o"
  "CMakeFiles/asdf_hadooplog.dir/states.cpp.o.d"
  "CMakeFiles/asdf_hadooplog.dir/writer.cpp.o"
  "CMakeFiles/asdf_hadooplog.dir/writer.cpp.o.d"
  "libasdf_hadooplog.a"
  "libasdf_hadooplog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_hadooplog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
