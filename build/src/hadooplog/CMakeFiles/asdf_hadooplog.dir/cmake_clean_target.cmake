file(REMOVE_RECURSE
  "libasdf_hadooplog.a"
)
