
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hadooplog/log_buffer.cpp" "src/hadooplog/CMakeFiles/asdf_hadooplog.dir/log_buffer.cpp.o" "gcc" "src/hadooplog/CMakeFiles/asdf_hadooplog.dir/log_buffer.cpp.o.d"
  "/root/repo/src/hadooplog/parser.cpp" "src/hadooplog/CMakeFiles/asdf_hadooplog.dir/parser.cpp.o" "gcc" "src/hadooplog/CMakeFiles/asdf_hadooplog.dir/parser.cpp.o.d"
  "/root/repo/src/hadooplog/states.cpp" "src/hadooplog/CMakeFiles/asdf_hadooplog.dir/states.cpp.o" "gcc" "src/hadooplog/CMakeFiles/asdf_hadooplog.dir/states.cpp.o.d"
  "/root/repo/src/hadooplog/writer.cpp" "src/hadooplog/CMakeFiles/asdf_hadooplog.dir/writer.cpp.o" "gcc" "src/hadooplog/CMakeFiles/asdf_hadooplog.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
