# Empty dependencies file for asdf_hadooplog.
# This may be replaced when dependencies are built.
