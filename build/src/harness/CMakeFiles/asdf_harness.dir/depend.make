# Empty dependencies file for asdf_harness.
# This may be replaced when dependencies are built.
