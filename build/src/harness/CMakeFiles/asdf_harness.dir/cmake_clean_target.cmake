file(REMOVE_RECURSE
  "libasdf_harness.a"
)
