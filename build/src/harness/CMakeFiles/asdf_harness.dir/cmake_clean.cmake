file(REMOVE_RECURSE
  "CMakeFiles/asdf_harness.dir/experiment.cpp.o"
  "CMakeFiles/asdf_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/asdf_harness.dir/pipelines.cpp.o"
  "CMakeFiles/asdf_harness.dir/pipelines.cpp.o.d"
  "libasdf_harness.a"
  "libasdf_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
