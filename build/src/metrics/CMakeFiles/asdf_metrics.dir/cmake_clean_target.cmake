file(REMOVE_RECURSE
  "libasdf_metrics.a"
)
