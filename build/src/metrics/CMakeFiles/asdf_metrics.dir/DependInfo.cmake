
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/catalog.cpp" "src/metrics/CMakeFiles/asdf_metrics.dir/catalog.cpp.o" "gcc" "src/metrics/CMakeFiles/asdf_metrics.dir/catalog.cpp.o.d"
  "/root/repo/src/metrics/os_model.cpp" "src/metrics/CMakeFiles/asdf_metrics.dir/os_model.cpp.o" "gcc" "src/metrics/CMakeFiles/asdf_metrics.dir/os_model.cpp.o.d"
  "/root/repo/src/metrics/sadc.cpp" "src/metrics/CMakeFiles/asdf_metrics.dir/sadc.cpp.o" "gcc" "src/metrics/CMakeFiles/asdf_metrics.dir/sadc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asdf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
