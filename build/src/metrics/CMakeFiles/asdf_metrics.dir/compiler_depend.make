# Empty compiler generated dependencies file for asdf_metrics.
# This may be replaced when dependencies are built.
