file(REMOVE_RECURSE
  "CMakeFiles/asdf_metrics.dir/catalog.cpp.o"
  "CMakeFiles/asdf_metrics.dir/catalog.cpp.o.d"
  "CMakeFiles/asdf_metrics.dir/os_model.cpp.o"
  "CMakeFiles/asdf_metrics.dir/os_model.cpp.o.d"
  "CMakeFiles/asdf_metrics.dir/sadc.cpp.o"
  "CMakeFiles/asdf_metrics.dir/sadc.cpp.o.d"
  "libasdf_metrics.a"
  "libasdf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
