# Empty dependencies file for asdf_faults.
# This may be replaced when dependencies are built.
