file(REMOVE_RECURSE
  "CMakeFiles/asdf_faults.dir/faults.cpp.o"
  "CMakeFiles/asdf_faults.dir/faults.cpp.o.d"
  "libasdf_faults.a"
  "libasdf_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
