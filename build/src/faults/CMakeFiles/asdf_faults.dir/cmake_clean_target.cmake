file(REMOVE_RECURSE
  "libasdf_faults.a"
)
