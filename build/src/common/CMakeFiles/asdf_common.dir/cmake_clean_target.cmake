file(REMOVE_RECURSE
  "libasdf_common.a"
)
