# Empty compiler generated dependencies file for asdf_common.
# This may be replaced when dependencies are built.
