file(REMOVE_RECURSE
  "CMakeFiles/asdf_common.dir/csv.cpp.o"
  "CMakeFiles/asdf_common.dir/csv.cpp.o.d"
  "CMakeFiles/asdf_common.dir/ini.cpp.o"
  "CMakeFiles/asdf_common.dir/ini.cpp.o.d"
  "CMakeFiles/asdf_common.dir/logging.cpp.o"
  "CMakeFiles/asdf_common.dir/logging.cpp.o.d"
  "CMakeFiles/asdf_common.dir/rng.cpp.o"
  "CMakeFiles/asdf_common.dir/rng.cpp.o.d"
  "CMakeFiles/asdf_common.dir/stats.cpp.o"
  "CMakeFiles/asdf_common.dir/stats.cpp.o.d"
  "CMakeFiles/asdf_common.dir/strings.cpp.o"
  "CMakeFiles/asdf_common.dir/strings.cpp.o.d"
  "CMakeFiles/asdf_common.dir/types.cpp.o"
  "CMakeFiles/asdf_common.dir/types.cpp.o.d"
  "libasdf_common.a"
  "libasdf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
