# Empty dependencies file for asdf_sim.
# This may be replaced when dependencies are built.
