file(REMOVE_RECURSE
  "CMakeFiles/asdf_sim.dir/engine.cpp.o"
  "CMakeFiles/asdf_sim.dir/engine.cpp.o.d"
  "CMakeFiles/asdf_sim.dir/resources.cpp.o"
  "CMakeFiles/asdf_sim.dir/resources.cpp.o.d"
  "libasdf_sim.a"
  "libasdf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
