file(REMOVE_RECURSE
  "libasdf_sim.a"
)
