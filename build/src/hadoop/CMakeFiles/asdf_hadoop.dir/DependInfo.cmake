
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hadoop/cluster.cpp" "src/hadoop/CMakeFiles/asdf_hadoop.dir/cluster.cpp.o" "gcc" "src/hadoop/CMakeFiles/asdf_hadoop.dir/cluster.cpp.o.d"
  "/root/repo/src/hadoop/hdfs.cpp" "src/hadoop/CMakeFiles/asdf_hadoop.dir/hdfs.cpp.o" "gcc" "src/hadoop/CMakeFiles/asdf_hadoop.dir/hdfs.cpp.o.d"
  "/root/repo/src/hadoop/job.cpp" "src/hadoop/CMakeFiles/asdf_hadoop.dir/job.cpp.o" "gcc" "src/hadoop/CMakeFiles/asdf_hadoop.dir/job.cpp.o.d"
  "/root/repo/src/hadoop/jobtracker.cpp" "src/hadoop/CMakeFiles/asdf_hadoop.dir/jobtracker.cpp.o" "gcc" "src/hadoop/CMakeFiles/asdf_hadoop.dir/jobtracker.cpp.o.d"
  "/root/repo/src/hadoop/node.cpp" "src/hadoop/CMakeFiles/asdf_hadoop.dir/node.cpp.o" "gcc" "src/hadoop/CMakeFiles/asdf_hadoop.dir/node.cpp.o.d"
  "/root/repo/src/hadoop/task.cpp" "src/hadoop/CMakeFiles/asdf_hadoop.dir/task.cpp.o" "gcc" "src/hadoop/CMakeFiles/asdf_hadoop.dir/task.cpp.o.d"
  "/root/repo/src/hadoop/tasktracker.cpp" "src/hadoop/CMakeFiles/asdf_hadoop.dir/tasktracker.cpp.o" "gcc" "src/hadoop/CMakeFiles/asdf_hadoop.dir/tasktracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asdf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asdf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/hadooplog/CMakeFiles/asdf_hadooplog.dir/DependInfo.cmake"
  "/root/repo/build/src/syscalls/CMakeFiles/asdf_syscalls.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
