# Empty dependencies file for asdf_hadoop.
# This may be replaced when dependencies are built.
