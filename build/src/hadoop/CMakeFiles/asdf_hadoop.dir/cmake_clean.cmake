file(REMOVE_RECURSE
  "CMakeFiles/asdf_hadoop.dir/cluster.cpp.o"
  "CMakeFiles/asdf_hadoop.dir/cluster.cpp.o.d"
  "CMakeFiles/asdf_hadoop.dir/hdfs.cpp.o"
  "CMakeFiles/asdf_hadoop.dir/hdfs.cpp.o.d"
  "CMakeFiles/asdf_hadoop.dir/job.cpp.o"
  "CMakeFiles/asdf_hadoop.dir/job.cpp.o.d"
  "CMakeFiles/asdf_hadoop.dir/jobtracker.cpp.o"
  "CMakeFiles/asdf_hadoop.dir/jobtracker.cpp.o.d"
  "CMakeFiles/asdf_hadoop.dir/node.cpp.o"
  "CMakeFiles/asdf_hadoop.dir/node.cpp.o.d"
  "CMakeFiles/asdf_hadoop.dir/task.cpp.o"
  "CMakeFiles/asdf_hadoop.dir/task.cpp.o.d"
  "CMakeFiles/asdf_hadoop.dir/tasktracker.cpp.o"
  "CMakeFiles/asdf_hadoop.dir/tasktracker.cpp.o.d"
  "libasdf_hadoop.a"
  "libasdf_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
