file(REMOVE_RECURSE
  "libasdf_hadoop.a"
)
