
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/syscalls/markov.cpp" "src/syscalls/CMakeFiles/asdf_syscalls.dir/markov.cpp.o" "gcc" "src/syscalls/CMakeFiles/asdf_syscalls.dir/markov.cpp.o.d"
  "/root/repo/src/syscalls/trace_model.cpp" "src/syscalls/CMakeFiles/asdf_syscalls.dir/trace_model.cpp.o" "gcc" "src/syscalls/CMakeFiles/asdf_syscalls.dir/trace_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asdf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asdf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
