file(REMOVE_RECURSE
  "CMakeFiles/asdf_syscalls.dir/markov.cpp.o"
  "CMakeFiles/asdf_syscalls.dir/markov.cpp.o.d"
  "CMakeFiles/asdf_syscalls.dir/trace_model.cpp.o"
  "CMakeFiles/asdf_syscalls.dir/trace_model.cpp.o.d"
  "libasdf_syscalls.a"
  "libasdf_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
