# Empty compiler generated dependencies file for asdf_syscalls.
# This may be replaced when dependencies are built.
