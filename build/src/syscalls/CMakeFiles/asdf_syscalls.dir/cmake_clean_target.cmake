file(REMOVE_RECURSE
  "libasdf_syscalls.a"
)
