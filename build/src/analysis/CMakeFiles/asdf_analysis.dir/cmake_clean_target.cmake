file(REMOVE_RECURSE
  "libasdf_analysis.a"
)
