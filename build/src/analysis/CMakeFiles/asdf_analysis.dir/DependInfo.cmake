
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bbmodel.cpp" "src/analysis/CMakeFiles/asdf_analysis.dir/bbmodel.cpp.o" "gcc" "src/analysis/CMakeFiles/asdf_analysis.dir/bbmodel.cpp.o.d"
  "/root/repo/src/analysis/evaluation.cpp" "src/analysis/CMakeFiles/asdf_analysis.dir/evaluation.cpp.o" "gcc" "src/analysis/CMakeFiles/asdf_analysis.dir/evaluation.cpp.o.d"
  "/root/repo/src/analysis/kmeans.cpp" "src/analysis/CMakeFiles/asdf_analysis.dir/kmeans.cpp.o" "gcc" "src/analysis/CMakeFiles/asdf_analysis.dir/kmeans.cpp.o.d"
  "/root/repo/src/analysis/mad.cpp" "src/analysis/CMakeFiles/asdf_analysis.dir/mad.cpp.o" "gcc" "src/analysis/CMakeFiles/asdf_analysis.dir/mad.cpp.o.d"
  "/root/repo/src/analysis/peercompare.cpp" "src/analysis/CMakeFiles/asdf_analysis.dir/peercompare.cpp.o" "gcc" "src/analysis/CMakeFiles/asdf_analysis.dir/peercompare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
