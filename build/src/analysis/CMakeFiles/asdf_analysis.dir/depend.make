# Empty dependencies file for asdf_analysis.
# This may be replaced when dependencies are built.
