file(REMOVE_RECURSE
  "CMakeFiles/asdf_analysis.dir/bbmodel.cpp.o"
  "CMakeFiles/asdf_analysis.dir/bbmodel.cpp.o.d"
  "CMakeFiles/asdf_analysis.dir/evaluation.cpp.o"
  "CMakeFiles/asdf_analysis.dir/evaluation.cpp.o.d"
  "CMakeFiles/asdf_analysis.dir/kmeans.cpp.o"
  "CMakeFiles/asdf_analysis.dir/kmeans.cpp.o.d"
  "CMakeFiles/asdf_analysis.dir/mad.cpp.o"
  "CMakeFiles/asdf_analysis.dir/mad.cpp.o.d"
  "CMakeFiles/asdf_analysis.dir/peercompare.cpp.o"
  "CMakeFiles/asdf_analysis.dir/peercompare.cpp.o.d"
  "libasdf_analysis.a"
  "libasdf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
