file(REMOVE_RECURSE
  "CMakeFiles/asdf_rpc.dir/daemons.cpp.o"
  "CMakeFiles/asdf_rpc.dir/daemons.cpp.o.d"
  "CMakeFiles/asdf_rpc.dir/transport.cpp.o"
  "CMakeFiles/asdf_rpc.dir/transport.cpp.o.d"
  "CMakeFiles/asdf_rpc.dir/wire.cpp.o"
  "CMakeFiles/asdf_rpc.dir/wire.cpp.o.d"
  "libasdf_rpc.a"
  "libasdf_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdf_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
