
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/daemons.cpp" "src/rpc/CMakeFiles/asdf_rpc.dir/daemons.cpp.o" "gcc" "src/rpc/CMakeFiles/asdf_rpc.dir/daemons.cpp.o.d"
  "/root/repo/src/rpc/transport.cpp" "src/rpc/CMakeFiles/asdf_rpc.dir/transport.cpp.o" "gcc" "src/rpc/CMakeFiles/asdf_rpc.dir/transport.cpp.o.d"
  "/root/repo/src/rpc/wire.cpp" "src/rpc/CMakeFiles/asdf_rpc.dir/wire.cpp.o" "gcc" "src/rpc/CMakeFiles/asdf_rpc.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hadoop/CMakeFiles/asdf_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/hadooplog/CMakeFiles/asdf_hadooplog.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asdf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/syscalls/CMakeFiles/asdf_syscalls.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asdf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
