# Empty dependencies file for asdf_rpc.
# This may be replaced when dependencies are built.
