file(REMOVE_RECURSE
  "libasdf_rpc.a"
)
