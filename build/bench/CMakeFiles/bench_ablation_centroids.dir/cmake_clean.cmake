file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_centroids.dir/bench_ablation_centroids.cpp.o"
  "CMakeFiles/bench_ablation_centroids.dir/bench_ablation_centroids.cpp.o.d"
  "bench_ablation_centroids"
  "bench_ablation_centroids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_centroids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
