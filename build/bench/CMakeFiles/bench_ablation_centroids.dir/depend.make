# Empty dependencies file for bench_ablation_centroids.
# This may be replaced when dependencies are built.
