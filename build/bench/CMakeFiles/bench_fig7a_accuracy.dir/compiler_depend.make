# Empty compiler generated dependencies file for bench_fig7a_accuracy.
# This may be replaced when dependencies are built.
