file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_fpr_bb.dir/bench_fig6a_fpr_bb.cpp.o"
  "CMakeFiles/bench_fig6a_fpr_bb.dir/bench_fig6a_fpr_bb.cpp.o.d"
  "bench_fig6a_fpr_bb"
  "bench_fig6a_fpr_bb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_fpr_bb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
