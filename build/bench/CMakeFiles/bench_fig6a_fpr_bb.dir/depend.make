# Empty dependencies file for bench_fig6a_fpr_bb.
# This may be replaced when dependencies are built.
