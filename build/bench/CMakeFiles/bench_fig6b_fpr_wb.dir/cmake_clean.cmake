file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_fpr_wb.dir/bench_fig6b_fpr_wb.cpp.o"
  "CMakeFiles/bench_fig6b_fpr_wb.dir/bench_fig6b_fpr_wb.cpp.o.d"
  "bench_fig6b_fpr_wb"
  "bench_fig6b_fpr_wb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_fpr_wb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
