# Empty dependencies file for bench_fig6b_fpr_wb.
# This may be replaced when dependencies are built.
