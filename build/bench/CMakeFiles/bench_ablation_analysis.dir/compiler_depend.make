# Empty compiler generated dependencies file for bench_ablation_analysis.
# This may be replaced when dependencies are built.
