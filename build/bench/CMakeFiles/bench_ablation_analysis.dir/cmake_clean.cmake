file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_analysis.dir/bench_ablation_analysis.cpp.o"
  "CMakeFiles/bench_ablation_analysis.dir/bench_ablation_analysis.cpp.o.d"
  "bench_ablation_analysis"
  "bench_ablation_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
