file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_bandwidth.dir/bench_table4_bandwidth.cpp.o"
  "CMakeFiles/bench_table4_bandwidth.dir/bench_table4_bandwidth.cpp.o.d"
  "bench_table4_bandwidth"
  "bench_table4_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
