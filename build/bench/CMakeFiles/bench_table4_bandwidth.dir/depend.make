# Empty dependencies file for bench_table4_bandwidth.
# This may be replaced when dependencies are built.
