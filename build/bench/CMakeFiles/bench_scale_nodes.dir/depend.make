# Empty dependencies file for bench_scale_nodes.
# This may be replaced when dependencies are built.
