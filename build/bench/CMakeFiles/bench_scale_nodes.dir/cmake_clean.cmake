file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_nodes.dir/bench_scale_nodes.cpp.o"
  "CMakeFiles/bench_scale_nodes.dir/bench_scale_nodes.cpp.o.d"
  "bench_scale_nodes"
  "bench_scale_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
