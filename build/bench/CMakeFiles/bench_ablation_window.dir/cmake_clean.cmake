file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_window.dir/bench_ablation_window.cpp.o"
  "CMakeFiles/bench_ablation_window.dir/bench_ablation_window.cpp.o.d"
  "bench_ablation_window"
  "bench_ablation_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
