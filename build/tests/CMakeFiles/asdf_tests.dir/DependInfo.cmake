
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allfaults.cpp" "tests/CMakeFiles/asdf_tests.dir/test_allfaults.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_allfaults.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/asdf_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/asdf_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/asdf_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_daemons.cpp" "tests/CMakeFiles/asdf_tests.dir/test_daemons.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_daemons.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/asdf_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_evaluation.cpp" "tests/CMakeFiles/asdf_tests.dir/test_evaluation.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_evaluation.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/asdf_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_faults.cpp" "tests/CMakeFiles/asdf_tests.dir/test_faults.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_faults.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/asdf_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_hdfs.cpp" "tests/CMakeFiles/asdf_tests.dir/test_hdfs.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_hdfs.cpp.o.d"
  "/root/repo/tests/test_ini.cpp" "tests/CMakeFiles/asdf_tests.dir/test_ini.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_ini.cpp.o.d"
  "/root/repo/tests/test_job.cpp" "tests/CMakeFiles/asdf_tests.dir/test_job.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_job.cpp.o.d"
  "/root/repo/tests/test_jobtracker.cpp" "tests/CMakeFiles/asdf_tests.dir/test_jobtracker.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_jobtracker.cpp.o.d"
  "/root/repo/tests/test_logparser.cpp" "tests/CMakeFiles/asdf_tests.dir/test_logparser.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_logparser.cpp.o.d"
  "/root/repo/tests/test_logwriter.cpp" "tests/CMakeFiles/asdf_tests.dir/test_logwriter.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_logwriter.cpp.o.d"
  "/root/repo/tests/test_mad.cpp" "tests/CMakeFiles/asdf_tests.dir/test_mad.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_mad.cpp.o.d"
  "/root/repo/tests/test_misc_common.cpp" "tests/CMakeFiles/asdf_tests.dir/test_misc_common.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_misc_common.cpp.o.d"
  "/root/repo/tests/test_modules.cpp" "tests/CMakeFiles/asdf_tests.dir/test_modules.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_modules.cpp.o.d"
  "/root/repo/tests/test_osmodel.cpp" "tests/CMakeFiles/asdf_tests.dir/test_osmodel.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_osmodel.cpp.o.d"
  "/root/repo/tests/test_resources.cpp" "tests/CMakeFiles/asdf_tests.dir/test_resources.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_resources.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/asdf_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/asdf_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/asdf_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_syscalls.cpp" "tests/CMakeFiles/asdf_tests.dir/test_syscalls.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_syscalls.cpp.o.d"
  "/root/repo/tests/test_task.cpp" "tests/CMakeFiles/asdf_tests.dir/test_task.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_task.cpp.o.d"
  "/root/repo/tests/test_types.cpp" "tests/CMakeFiles/asdf_tests.dir/test_types.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_types.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/asdf_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_wire.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/asdf_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/asdf_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/asdf_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/asdf_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asdf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/asdf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/asdf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/asdf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/asdf_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/hadoop/CMakeFiles/asdf_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/hadooplog/CMakeFiles/asdf_hadooplog.dir/DependInfo.cmake"
  "/root/repo/build/src/syscalls/CMakeFiles/asdf_syscalls.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asdf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asdf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
