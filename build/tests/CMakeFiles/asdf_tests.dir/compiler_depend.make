# Empty compiler generated dependencies file for asdf_tests.
# This may be replaced when dependencies are built.
