# Empty dependencies file for asdfd.
# This may be replaced when dependencies are built.
