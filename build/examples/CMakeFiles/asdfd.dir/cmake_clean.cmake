file(REMOVE_RECURSE
  "CMakeFiles/asdfd.dir/asdfd.cpp.o"
  "CMakeFiles/asdfd.dir/asdfd.cpp.o.d"
  "asdfd"
  "asdfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asdfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
