file(REMOVE_RECURSE
  "CMakeFiles/log_parse_demo.dir/log_parse_demo.cpp.o"
  "CMakeFiles/log_parse_demo.dir/log_parse_demo.cpp.o.d"
  "log_parse_demo"
  "log_parse_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_parse_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
