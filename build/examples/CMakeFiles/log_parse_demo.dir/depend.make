# Empty dependencies file for log_parse_demo.
# This may be replaced when dependencies are built.
