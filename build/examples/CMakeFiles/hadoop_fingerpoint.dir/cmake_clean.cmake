file(REMOVE_RECURSE
  "CMakeFiles/hadoop_fingerpoint.dir/hadoop_fingerpoint.cpp.o"
  "CMakeFiles/hadoop_fingerpoint.dir/hadoop_fingerpoint.cpp.o.d"
  "hadoop_fingerpoint"
  "hadoop_fingerpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadoop_fingerpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
