# Empty compiler generated dependencies file for hadoop_fingerpoint.
# This may be replaced when dependencies are built.
