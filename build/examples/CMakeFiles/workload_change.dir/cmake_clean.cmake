file(REMOVE_RECURSE
  "CMakeFiles/workload_change.dir/workload_change.cpp.o"
  "CMakeFiles/workload_change.dir/workload_change.cpp.o.d"
  "workload_change"
  "workload_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
