
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/workload_change.cpp" "examples/CMakeFiles/workload_change.dir/workload_change.cpp.o" "gcc" "examples/CMakeFiles/workload_change.dir/workload_change.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/asdf_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/asdf_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/asdf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/asdf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/asdf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/asdf_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/asdf_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/hadoop/CMakeFiles/asdf_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/hadooplog/CMakeFiles/asdf_hadooplog.dir/DependInfo.cmake"
  "/root/repo/build/src/syscalls/CMakeFiles/asdf_syscalls.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/asdf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/asdf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asdf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
