# Empty dependencies file for workload_change.
# This may be replaced when dependencies are built.
