# Empty dependencies file for custom_module.
# This may be replaced when dependencies are built.
