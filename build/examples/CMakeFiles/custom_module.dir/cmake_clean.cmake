file(REMOVE_RECURSE
  "CMakeFiles/custom_module.dir/custom_module.cpp.o"
  "CMakeFiles/custom_module.dir/custom_module.cpp.o.d"
  "custom_module"
  "custom_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
