// Figure 5 demo: Hadoop log text -> events -> per-second state vectors.
//
// Runs a short simulated job, dumps a slice of the TaskTracker and
// DataNode logs one slave produced, and shows the state-vector table
// the hadoop-log parser infers from those same text lines — the
// white-box extraction of Section 4.4.
#include <cstdio>

#include "hadoop/cluster.h"
#include "hadooplog/parser.h"
#include "hadooplog/states.h"
#include "sim/engine.h"

int main() {
  using namespace asdf;

  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 3;
  hadoop::Cluster cluster(params, 20090415, engine);
  cluster.start();

  hadoop::JobSpec job;
  job.inputBytes = 64.0e6;
  job.numReduces = 2;
  job.mapCpuPerByte = 8.0e-7;
  job.mapOutputRatio = 0.6;
  cluster.jobTracker().submit(job, 0.0);
  engine.runUntil(240.0);

  hadoop::Node& node = cluster.node(1);
  std::printf("=== slave1 TaskTracker log (first 12 lines) ===\n");
  for (std::size_t i = 0; i < node.ttLog().lineCount() && i < 12; ++i) {
    std::printf("%s\n", node.ttLog().line(i).c_str());
  }
  std::printf("\n=== slave1 DataNode log (first 8 lines) ===\n");
  for (std::size_t i = 0; i < node.dnLog().lineCount() && i < 8; ++i) {
    std::printf("%s\n", node.dnLog().line(i).c_str());
  }

  // Parse the text back into per-second state vectors.
  hadooplog::TtLogParser ttParser;
  hadooplog::DnLogParser dnParser;
  ttParser.startAt(0);
  dnParser.startAt(0);
  ttParser.consume(node.ttLog().linesFrom(0));
  dnParser.consume(node.dnLog().linesFrom(0));
  const auto ttSamples = ttParser.poll(engine.now());
  const auto dnSamples = dnParser.poll(engine.now());

  std::printf("\n=== inferred state vectors (every 10th second) ===\n");
  std::printf("%6s", "t");
  for (const char* name : hadooplog::ttStateNames()) {
    std::printf(" %12s", name);
  }
  for (const char* name : hadooplog::dnStateNames()) {
    std::printf(" %12s", name);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < ttSamples.size() && i < dnSamples.size();
       i += 10) {
    std::printf("%6ld", ttSamples[i].second);
    for (double c : ttSamples[i].counts) std::printf(" %12.0f", c);
    for (double c : dnSamples[i].counts) std::printf(" %12.0f", c);
    std::printf("\n");
  }

  std::printf("\nparsed %zu TaskTracker lines and %zu DataNode lines; "
              "%zu tasks still open, %zu lines ignored\n",
              node.ttLog().lineCount(), node.dnLog().lineCount(),
              ttParser.openTaskCount(),
              ttParser.ignoredLineCount() + dnParser.ignoredLineCount());
  return 0;
}
