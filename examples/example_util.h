// Tiny command-line flag helpers shared by the example binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>

namespace asdf::examples {

/// Returns the value of "--name=value", or fallback when absent.
inline std::string flagValue(int argc, char** argv, const std::string& name,
                             const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline double flagDouble(int argc, char** argv, const std::string& name,
                         double fallback) {
  const std::string v = flagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atof(v.c_str());
}

inline long flagInt(int argc, char** argv, const std::string& name,
                    long fallback) {
  const std::string v = flagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atol(v.c_str());
}

/// Strict argument validation: every argument must be "--name" or
/// "--name=value" with `name` in `allowed`. On the first unknown
/// argument prints an error plus `usage` to stderr and returns false
/// (callers exit nonzero) — a mistyped flag must not silently fall
/// back to a default.
inline bool checkFlags(int argc, char** argv,
                       std::initializer_list<const char*> allowed,
                       const std::string& usage) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool known = false;
    if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
      const std::size_t eq = arg.find('=');
      const std::string name =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      for (const char* a : allowed) {
        if (name == a) {
          known = true;
          break;
        }
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown option '%s'\nusage: %s", arg.c_str(),
                   usage.c_str());
      return false;
    }
  }
  return true;
}

/// Strict --shards parsing: accepts only a positive integer (capped at
/// 64 network-plane shards — far past any sane core count). Returns
/// false (after printing to stderr) on --shards=0, negatives, or
/// non-numeric values: a daemon silently running single-shard when the
/// operator asked for 8 would be a perf bug nobody notices.
inline bool parseShards(int argc, char** argv, int& shardsOut) {
  shardsOut = 1;
  std::string value;
  bool present = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards") {
      present = true;  // bare form: no value, rejected below
      value.clear();
    } else if (arg.compare(0, 9, "--shards=") == 0) {
      present = true;
      value = arg.substr(9);
    }
  }
  if (!present) return true;
  char* end = nullptr;
  const long parsed =
      value.empty() ? 0 : std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end == value.c_str() || *end != '\0' || parsed < 1 ||
      parsed > 64) {
    std::fprintf(stderr,
                 "--shards must be an integer in [1, 64], got '%s'\n",
                 value.c_str());
    return false;
  }
  shardsOut = static_cast<int>(parsed);
  return true;
}

inline bool flagPresent(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  const std::string prefix = bare + "=";
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] ||
        std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace asdf::examples
