// Tiny command-line flag helpers shared by the example binaries.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace asdf::examples {

/// Returns the value of "--name=value", or fallback when absent.
inline std::string flagValue(int argc, char** argv, const std::string& name,
                             const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline double flagDouble(int argc, char** argv, const std::string& name,
                         double fallback) {
  const std::string v = flagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atof(v.c_str());
}

inline long flagInt(int argc, char** argv, const std::string& name,
                    long fallback) {
  const std::string v = flagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atol(v.c_str());
}

inline bool flagPresent(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  const std::string prefix = bare + "=";
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] ||
        std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace asdf::examples
