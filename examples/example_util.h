// Tiny command-line flag helpers shared by the example binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>

namespace asdf::examples {

/// Returns the value of "--name=value", or fallback when absent.
inline std::string flagValue(int argc, char** argv, const std::string& name,
                             const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline double flagDouble(int argc, char** argv, const std::string& name,
                         double fallback) {
  const std::string v = flagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atof(v.c_str());
}

inline long flagInt(int argc, char** argv, const std::string& name,
                    long fallback) {
  const std::string v = flagValue(argc, argv, name, "");
  return v.empty() ? fallback : std::atol(v.c_str());
}

/// Strict argument validation: every argument must be "--name" or
/// "--name=value" with `name` in `allowed`. On the first unknown
/// argument prints an error plus `usage` to stderr and returns false
/// (callers exit nonzero) — a mistyped flag must not silently fall
/// back to a default.
inline bool checkFlags(int argc, char** argv,
                       std::initializer_list<const char*> allowed,
                       const std::string& usage) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool known = false;
    if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
      const std::size_t eq = arg.find('=');
      const std::string name =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      for (const char* a : allowed) {
        if (name == a) {
          known = true;
          break;
        }
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown option '%s'\nusage: %s", arg.c_str(),
                   usage.c_str());
      return false;
    }
  }
  return true;
}

/// Strict bounded-integer flag parsing: "--name" absent leaves `out`
/// at `fallback` and succeeds; present, the value must be a fully
/// numeric integer within [lo, hi] — a bare "--name", an empty value,
/// trailing garbage ("8x"), or an out-of-range value prints an error
/// to stderr and returns false (callers exit nonzero). A flag silently
/// falling back to its default when the operator mistyped it would be
/// a config bug nobody notices.
inline bool parseBoundedInt(int argc, char** argv, const std::string& name,
                            long lo, long hi, long fallback, long& out) {
  out = fallback;
  const std::string bare = "--" + name;
  const std::string prefix = bare + "=";
  std::string value;
  bool present = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == bare) {
      present = true;  // bare form: no value, rejected below
      value.clear();
    } else if (arg.compare(0, prefix.size(), prefix) == 0) {
      present = true;
      value = arg.substr(prefix.size());
    }
  }
  if (!present) return true;
  char* end = nullptr;
  const long parsed =
      value.empty() ? 0 : std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end == value.c_str() || *end != '\0' || parsed < lo ||
      parsed > hi) {
    std::fprintf(stderr, "--%s must be an integer in [%ld, %ld], got '%s'\n",
                 name.c_str(), lo, hi, value.c_str());
    return false;
  }
  out = parsed;
  return true;
}

/// Strict --shards parsing: accepts only a positive integer (capped at
/// 64 network-plane shards — far past any sane core count).
inline bool parseShards(int argc, char** argv, int& shardsOut) {
  long shards = 1;
  if (!parseBoundedInt(argc, argv, "shards", 1, 64, 1, shards)) return false;
  shardsOut = static_cast<int>(shards);
  return true;
}

inline bool flagPresent(int argc, char** argv, const std::string& name) {
  const std::string bare = "--" + name;
  const std::string prefix = bare + "=";
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i] ||
        std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace asdf::examples
