// Correlated-fault scenarios on a rack-aware simulated cluster
// (DESIGN.md §16).
//
// Trains the black-box model fault-free, then injects one correlated
// scenario class — or the whole matrix — on a racks x nodes-per-rack
// topology and prints per-class balanced accuracy, FP rate, and
// localization latency for the black-box, white-box, and combined
// approaches.
//
// Usage:
//   scenario_fingerpoint --slaves=12 --racks=3 --scenario=partition
//   scenario_fingerpoint --slaves=12 --racks=3 --scenario=all
//   scenario_fingerpoint --slaves=9 --racks=3 --nodes-per-rack=3 \
//                        --uplink-gbps=10 --scenario=gray --seed=7
//
// Scenario names: partition | cascade | noisy-neighbor | gray | all
// (canonical names RackPartition etc. are accepted too). Exits 0 only
// when every requested scenario was localized by the combined
// approach; CI runs one class per job against this gate.
#include <cstdio>
#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "common/strings.h"
#include "examples/example_util.h"
#include "faults/scenarios.h"
#include "harness/scenario_matrix.h"
#include "modules/modules.h"

int main(int argc, char** argv) {
  using namespace asdf;
  using examples::flagDouble;
  using examples::flagInt;
  using examples::flagPresent;
  using examples::flagValue;
  using examples::parseBoundedInt;

  if (!examples::checkFlags(
          argc, argv,
          {"slaves", "racks", "nodes-per-rack", "uplink-gbps", "scenario",
           "duration", "train-duration", "seed", "inject-at", "verbose"},
          "scenario_fingerpoint [--slaves=N] [--racks=N] "
          "[--nodes-per-rack=N] [--uplink-gbps=N] "
          "[--scenario=partition|cascade|noisy-neighbor|gray|all] "
          "[--duration=T] [--train-duration=T] [--seed=N] "
          "[--inject-at=T] [--verbose]\n")) {
    return 2;
  }

  modules::registerBuiltinModules();
  if (flagPresent(argc, argv, "verbose")) setLogLevel(LogLevel::kInfo);

  // The topology flags gate hard on parse errors: a daemon silently
  // running flat when the operator asked for racks would void every
  // scenario result below.
  long racks = 3, nodesPerRack = 0, uplinkGbps = 10;
  if (!parseBoundedInt(argc, argv, "racks", 1, 1024, 3, racks) ||
      !parseBoundedInt(argc, argv, "nodes-per-rack", 0, 1024, 0,
                       nodesPerRack) ||
      !parseBoundedInt(argc, argv, "uplink-gbps", 1, 400, 10, uplinkGbps)) {
    return 2;
  }

  harness::ExperimentSpec spec;
  spec.slaves = static_cast<int>(flagInt(argc, argv, "slaves", 12));
  spec.duration = flagDouble(argc, argv, "duration", 900.0);
  spec.trainDuration = flagDouble(argc, argv, "train-duration", 420.0);
  spec.seed = static_cast<std::uint64_t>(flagInt(argc, argv, "seed", 42));
  spec.topology.racks = static_cast<int>(racks);
  spec.topology.nodesPerRack = static_cast<int>(nodesPerRack);
  spec.topology.uplinkBytesPerSec = static_cast<double>(uplinkGbps) * 1.25e8;
  spec.scenario.startTime = flagDouble(argc, argv, "inject-at", 0.0);

  const std::string which = flagValue(argc, argv, "scenario", "all");
  std::vector<faults::ScenarioClass> classes;
  try {
    if (which == "all") {
      classes = faults::allScenarios();
    } else {
      classes.push_back(faults::scenarioFromName(which));
    }
    harness::validateSpec(
        harness::specForScenario(spec, classes.front()));
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "scenario_fingerpoint: %s\n", e.what());
    return 2;
  }

  std::printf("ASDF correlated-scenario fingerpointing\n");
  std::printf("  %d slaves in %d racks (%d/rack), %ld Gbps uplinks, "
              "seed %llu\n",
              spec.slaves, spec.topology.racks,
              topology::ClusterLayout(spec.slaves, spec.topology)
                  .nodesPerRack(),
              uplinkGbps,
              static_cast<unsigned long long>(spec.seed));

  int exitCode = 0;
  try {
    const analysis::BlackBoxModel model = harness::trainModel(spec);

    harness::ScenarioMatrix matrix;
    for (faults::ScenarioClass cls : classes) {
      matrix.rows.push_back(harness::runScenarioClass(spec, cls, model));
      const harness::ScenarioOutcome& row = matrix.rows.back();
      std::printf("  %s: %zu culprit(s), %zu events, latency %s\n",
                  row.name.c_str(), row.culprits.size(), row.eventCount,
                  row.combined.latencySeconds < 0
                      ? "n/a"
                      : strformat("%.0f s", row.combined.latencySeconds)
                            .c_str());
      if (row.combined.latencySeconds < 0) {
        std::printf("FAILED: %s not localized by the combined approach\n",
                    row.name.c_str());
        exitCode = 1;
      }
    }

    harness::aggregateMatrix(matrix);
    std::printf("\n%s", harness::formatScenarioMatrix(matrix).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_fingerpoint: %s\n", e.what());
    exitCode = 1;
  }
  return exitCode;
}
