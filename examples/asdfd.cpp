// asdfd — the ASDF control-node daemon, as it would ship.
//
// Runs a complete monitored deployment from a user-supplied fpt-core
// configuration file (or a generated default), against the simulated
// cluster substrate. This is the "single ASDF instance ... run on a
// dedicated machine (the ASDF control node)" of Section 4.3, with the
// operational trimmings a deployable tool needs: model training or
// loading, alarm logging, optional CSV export, optional mitigation,
// and an end-of-run report.
//
// Usage:
//   asdfd [--config=FILE]        custom fpt-core configuration
//         [--slaves=8] [--duration=1800] [--seed=42]
//         [--fault=none|CPUHog|...] [--node=3] [--inject-at=600]
//         [--model-out=FILE]     save the trained black-box model
//         [--model-in=FILE]      reuse a previously trained model
//         [--mitigate]           blacklist fingerpointed nodes
//         [--realtime]           pace the run by the wall clock
//         [--threads=N]          run same-level modules on N pool threads
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"
#include "core/fpt_core.h"
#include "core/realtime.h"
#include "examples/example_util.h"
#include "faults/faults.h"
#include "harness/experiment.h"
#include "modules/modules.h"
#include "rpc/daemons.h"
#include "workload/gridmix.h"

namespace {

using namespace asdf;

class BlacklistMitigator : public modules::Mitigator {
 public:
  explicit BlacklistMitigator(hadoop::Cluster& cluster)
      : cluster_(cluster) {}
  void quarantine(const std::string& origin, SimTime when) override {
    long node = 0;
    if (startsWith(origin, "slave") && parseInt(origin.substr(5), node)) {
      std::printf("[asdfd] t=%.0f MITIGATION: blacklisting %s\n", when,
                  origin.c_str());
      cluster_.jobTracker().blacklistNode(static_cast<NodeId>(node));
    }
  }

 private:
  hadoop::Cluster& cluster_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace asdf;
  using namespace asdf::examples;
  modules::registerBuiltinModules();
  setLogLevel(LogLevel::kInfo);

  const int slaves = static_cast<int>(flagInt(argc, argv, "slaves", 8));
  const double duration = flagDouble(argc, argv, "duration", 1800.0);
  const auto seed =
      static_cast<std::uint64_t>(flagInt(argc, argv, "seed", 42));

  // --- black-box model: load or train -------------------------------
  analysis::BlackBoxModel model;
  const std::string modelIn = flagValue(argc, argv, "model-in", "");
  if (!modelIn.empty()) {
    std::ifstream in(modelIn);
    if (!in) {
      std::fprintf(stderr, "asdfd: cannot read %s\n", modelIn.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    model = analysis::deserializeModel(buf.str());
    std::printf("[asdfd] loaded model from %s (%zu states)\n",
                modelIn.c_str(), model.states());
  } else {
    harness::ExperimentSpec trainSpec;
    trainSpec.slaves = slaves;
    trainSpec.seed = seed;
    std::printf("[asdfd] training black-box model (%.0f s fault-free)...\n",
                trainSpec.trainDuration);
    model = harness::trainModel(trainSpec);
  }
  const std::string modelOut = flagValue(argc, argv, "model-out", "");
  if (!modelOut.empty()) {
    std::ofstream out(modelOut);
    out << analysis::serializeModel(model);
    std::printf("[asdfd] saved model to %s\n", modelOut.c_str());
  }

  // --- cluster + workload --------------------------------------------
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = slaves;
  hadoop::Cluster cluster(params, seed * 6151 + 3, engine);
  workload::GridMixGenerator gridmix(cluster, {}, seed * 7411 + 1);
  cluster.start();
  gridmix.start();
  rpc::RpcHub hub(cluster, 0.0);
  modules::HadoopLogSync sync;
  BlacklistMitigator mitigator(cluster);

  core::Environment env;
  env.provide("rpc", &hub);
  env.provide("bb_model", &model);
  env.provide("hl_sync", &sync);
  env.provide<modules::Mitigator>("mitigator", &mitigator);
  long alarmWindows = 0;
  long flaggedDecisions = 0;
  env.alarmSink = [&](const core::Alarm& alarm) {
    ++alarmWindows;
    for (std::size_t i = 0; i < alarm.flags.size(); ++i) {
      if (alarm.flags[i] > 0.5) {
        ++flaggedDecisions;
        std::printf("[asdfd] t=%.0f %s fingerpoints %s\n", alarm.time,
                    alarm.channel.c_str(),
                    i < alarm.origins.size() ? alarm.origins[i].c_str()
                                             : "?");
      }
    }
  };

  // --- fpt-core configuration -----------------------------------------
  core::FptCore fpt(engine, env);
  const int threads = static_cast<int>(flagInt(argc, argv, "threads", 1));
  fpt.setExecutor(core::makeExecutor(threads));
  const std::string configFile = flagValue(argc, argv, "config", "");
  if (!configFile.empty()) {
    fpt.configureFromFile(configFile);
  } else {
    harness::PipelineParams pipeline;
    pipeline.slaves = slaves;
    std::string config = harness::buildCombinedConfig(pipeline);
    if (flagPresent(argc, argv, "mitigate")) {
      config +=
          "\n[mitigate]\nid = medic\nconsecutive = 3\ninput[a] = "
          "@analysis_wb\n";
    }
    fpt.configureFromText(config);
  }
  std::printf("[asdfd] DAG up: %zu module instances (%s executor)\n",
              fpt.instances().size(), fpt.executor().name().c_str());

  // --- optional fault --------------------------------------------------
  faults::FaultSpec faultSpec;
  faultSpec.type =
      faults::faultFromName(flagValue(argc, argv, "fault", "none"));
  faultSpec.node = static_cast<NodeId>(flagInt(argc, argv, "node", 3));
  faultSpec.startTime = flagDouble(argc, argv, "inject-at", 600.0);
  faults::FaultInjector injector(cluster, faultSpec);
  injector.arm();
  if (faultSpec.type != faults::FaultType::kNone) {
    std::printf("[asdfd] will inject %s on slave%d at t=%.0f\n",
                faults::faultName(faultSpec.type), faultSpec.node,
                faultSpec.startTime);
  }

  // --- run --------------------------------------------------------------
  if (flagPresent(argc, argv, "realtime")) {
    core::RealTimeDriver driver(engine);
    driver.run(duration);
  } else {
    engine.runUntil(duration);
  }

  // --- report -------------------------------------------------------------
  std::printf("\n[asdfd] run complete: %.0f s monitored, %ld analysis "
              "windows, %ld fingerpointing decisions\n",
              duration, alarmWindows, flaggedDecisions);
  std::printf("[asdfd] jobs %ld/%ld completed; fpt-core %.4f%% CPU; "
              "blacklisted nodes: %zu\n",
              cluster.jobTracker().jobsCompleted(),
              cluster.jobTracker().jobsSubmitted(),
              100.0 * fpt.cpuSeconds() / duration,
              cluster.jobTracker().blacklistedCount());
  return 0;
}
