// Full ASDF-on-Hadoop deployment: train a black-box model on a
// fault-free GridMix run, then monitor a second run with one injected
// fault and report what each analysis fingerpointed.
//
// Usage:
//   hadoop_fingerpoint [--fault=CPUHog|DiskHog|PacketLoss|HADOOP-1036|
//                         HADOOP-1152|HADOOP-2080|none]
//                      [--node=3] [--slaves=16] [--duration=1800]
//                      [--inject-at=600] [--seed=42] [--verbose]
#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"
#include "examples/example_util.h"
#include "faults/faults.h"
#include "harness/experiment.h"
#include "modules/modules.h"

int main(int argc, char** argv) {
  using namespace asdf;
  using examples::flagDouble;
  using examples::flagInt;
  using examples::flagPresent;
  using examples::flagValue;

  modules::registerBuiltinModules();
  if (flagPresent(argc, argv, "verbose")) {
    setLogLevel(LogLevel::kInfo);
  }

  harness::ExperimentSpec spec;
  spec.slaves = static_cast<int>(flagInt(argc, argv, "slaves", 16));
  spec.duration = flagDouble(argc, argv, "duration", 1800.0);
  spec.trainDuration = flagDouble(argc, argv, "train-duration", 600.0);
  spec.seed = static_cast<std::uint64_t>(flagInt(argc, argv, "seed", 42));
  spec.fault.type =
      faults::faultFromName(flagValue(argc, argv, "fault", "CPUHog"));
  spec.fault.node = static_cast<NodeId>(flagInt(argc, argv, "node", 3));
  spec.fault.startTime = flagDouble(argc, argv, "inject-at", 600.0);
  spec.pipeline.quietPrint = !flagPresent(argc, argv, "verbose");

  std::printf("ASDF fingerpointing demo\n");
  std::printf("  cluster: %d slaves, %.0f s run, fault %s on slave %d at %.0f s\n",
              spec.slaves, spec.duration, faults::faultName(spec.fault.type),
              spec.fault.node, spec.fault.startTime);

  std::printf("training black-box model (fault-free %.0f s run)...\n",
              spec.trainDuration);
  const analysis::BlackBoxModel model = harness::trainModel(spec);
  std::printf("  %zu centroids over %zu metrics\n", model.states(),
              model.dims());

  std::printf("running monitored experiment...\n");
  const harness::ExperimentResult result =
      harness::runExperiment(spec, model);
  std::printf("  jobs: %ld submitted, %ld completed; tasks: %ld done, %ld "
              "failed; %ld speculative\n",
              result.jobsSubmitted, result.jobsCompleted,
              result.tasksCompleted, result.tasksFailed,
              result.speculativeLaunches);
  std::printf("  alarm windows: %zu black-box, %zu white-box\n",
              result.blackBox.size(), result.whiteBox.size());

  const harness::ExperimentSummary summary = harness::summarize(result);
  auto show = [](const char* name, const harness::ApproachSummary& s) {
    std::printf("  %-10s balanced accuracy %5.1f%%  (TPR %5.1f%%, TNR %5.1f%%)"
                "  latency %s\n",
                name, s.eval.balancedAccuracyPct(),
                100.0 * s.eval.truePositiveRate(),
                100.0 * s.eval.trueNegativeRate(),
                s.latencySeconds < 0
                    ? "n/a"
                    : strformat("%.0f s", s.latencySeconds).c_str());
  };
  std::printf("results:\n");
  show("black-box", summary.blackBox);
  show("white-box", summary.whiteBox);
  show("combined", summary.combined);

  std::printf("monitoring cost: sadc_rpcd %.4f%% CPU, hadoop_log_rpcd "
              "%.4f%% CPU, strace_rpcd %.4f%% CPU, fpt-core %.4f%% CPU\n",
              result.sadcRpcdCpuPct, result.hadoopLogRpcdCpuPct,
              result.straceRpcdCpuPct, result.fptCoreCpuPct);
  return 0;
}
