// Plug-in API demo: a user-defined analysis module.
//
// The paper's central architectural claim is that new data sources and
// analysis techniques can be plugged into fpt-core without touching
// the framework ("ASDF's support for pluggable algorithms can
// accelerate testing and deployment of new analysis algorithms").
// This example defines a custom EWMA-threshold detector, registers it
// under the type name [ewma_detect], wires it into a DAG by
// configuration text, and runs it against a simulated CPU spike.
#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "common/strings.h"
#include "core/fpt_core.h"
#include "core/registry.h"
#include "faults/faults.h"
#include "hadoop/cluster.h"
#include "metrics/catalog.h"
#include "modules/modules.h"
#include "rpc/daemons.h"
#include "workload/gridmix.h"

namespace {

using namespace asdf;

// A classic single-stream detector: track an exponentially-weighted
// mean/variance of one metric and flag samples more than `nsigma`
// deviations out. Demonstrates the full plug-in API surface: config
// parameters, input verification, output creation, input-triggered
// scheduling, and the alarm sink.
class EwmaDetectModule final : public core::Module {
 public:
  void init(core::ModuleContext& ctx) override {
    metricIndex_ = static_cast<std::size_t>(ctx.intParam("metric", 0));
    alpha_ = ctx.numParam("alpha", 0.05);
    nsigma_ = ctx.numParam("nsigma", 4.0);
    warmup_ = ctx.intParam("warmup", 30);
    if (ctx.inputWidth("input") != 1) {
      throw ConfigError("[" + ctx.instanceId() +
                        "] ewma_detect needs exactly one 'input'");
    }
    out_ = ctx.addOutput("alarms", ctx.inputOrigin("input", 0));
    ctx.setInputTrigger(1);
  }

  void run(core::ModuleContext& ctx, core::RunReason) override {
    if (!ctx.inputFresh("input", 0)) return;
    const auto& vec = core::asVector(ctx.input("input", 0).value);
    if (metricIndex_ >= vec.size()) {
      throw ConfigError("ewma_detect: metric index out of range");
    }
    const double x = vec[metricIndex_];
    ++seen_;
    if (seen_ <= warmup_) {
      mean_ = mean_ + (x - mean_) / seen_;
      var_ += (x - mean_) * (x - mean_) / std::max<long>(1, seen_ - 1);
      return;
    }
    const double sd = std::sqrt(std::max(var_, 1e-9));
    const bool anomalous = std::abs(x - mean_) > nsigma_ * sd;
    mean_ = (1 - alpha_) * mean_ + alpha_ * x;
    var_ = (1 - alpha_) * var_ + alpha_ * (x - mean_) * (x - mean_);
    ctx.write(out_, std::vector<double>{anomalous ? 1.0 : 0.0});
    if (anomalous && ctx.env().alarmSink) {
      core::Alarm alarm;
      alarm.time = ctx.now();
      alarm.channel = ctx.instanceId();
      alarm.flags = {1.0};
      alarm.origins = {ctx.inputOrigin("input", 0)};
      ctx.env().alarmSink(alarm);
    }
  }

 private:
  std::size_t metricIndex_ = 0;
  double alpha_ = 0.05;
  double nsigma_ = 4.0;
  long warmup_ = 30;
  long seen_ = 0;
  double mean_ = 0.0;
  double var_ = 0.0;
  int out_ = -1;
};

}  // namespace

int main() {
  using namespace asdf;
  modules::registerBuiltinModules();
  // One line plugs the custom analysis into the framework.
  core::ModuleRegistry::global().registerType(
      "ewma_detect", [] { return std::make_unique<EwmaDetectModule>(); });

  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 3;
  hadoop::Cluster cluster(params, 5150, engine);
  workload::GridMixGenerator gridmix(cluster, {}, 5151);
  cluster.start();
  gridmix.start();
  rpc::RpcHub hub(cluster, 0.0);

  core::Environment env;
  env.provide("rpc", &hub);
  long alarmsOnSlave2 = 0;
  long alarmsElsewhere = 0;
  env.alarmSink = [&](const core::Alarm& alarm) {
    if (!alarm.origins.empty() && alarm.origins[0] == "slave2") {
      ++alarmsOnSlave2;
    } else {
      ++alarmsElsewhere;
    }
  };

  // Monitor cpu_user_pct on every slave with the custom detector.
  std::string config;
  for (int i = 1; i <= 3; ++i) {
    config += strformat("[sadc]\nid = sadc%d\nnode = %d\n\n", i, i);
    config += strformat(
        "[ewma_detect]\nid = det%d\nmetric = %d\nnsigma = 6\nwarmup = 120\n"
        "input[input] = sadc%d.output0\n\n",
        i, metrics::kCpuUserPct, i);
  }
  core::FptCore fpt(engine, env);
  fpt.configureFromText(config);

  // A CPU hog arrives at t=200 on slave 2.
  faults::FaultSpec spec;
  spec.type = faults::FaultType::kCpuHog;
  spec.node = 2;
  spec.startTime = 200.0;
  faults::FaultInjector injector(cluster, spec);
  injector.arm();

  engine.runUntil(400.0);
  std::printf("custom ewma_detect module: %ld alarms on slave2 (culprit), "
              "%ld elsewhere\n",
              alarmsOnSlave2, alarmsElsewhere);
  return alarmsOnSlave2 > 0 ? 0 : 1;
}
