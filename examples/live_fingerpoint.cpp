// End-to-end ASDF over real sockets: fingerpoint an injected fault on
// a cluster served by asdf_rpcd, with fpt-core pumped by wall time.
//
// Usage:
//   live_fingerpoint --self-host                       (in-process daemon)
//   live_fingerpoint --host=127.0.0.1 --port=4588      (external daemon)
//
// With an external daemon, start it with matching parameters first:
//   asdf_rpcd --port=4588 --slaves=8 --seed=42
//             --fault=CPUHog --fault-node=3 --fault-start=200
//
// Other flags: --fault=... --node=N --inject-at=T --slaves=N
//              --duration=T --seed=N --scale=X (virtual s per wall s)
//              --record=DIR (flight-record every collection round)
//              --verbose
//
// Exits 0 only when the combined analysis localized the fault (a
// latency was measured); nonzero otherwise — CI uses this as the live
// end-to-end gate.
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"
#include "examples/example_util.h"
#include "faults/faults.h"
#include "harness/experiment.h"
#include "modules/modules.h"
#include "net/rpcd_server.h"

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  using namespace asdf;
  using examples::flagDouble;
  using examples::flagInt;
  using examples::flagPresent;
  using examples::flagValue;

  if (!examples::checkFlags(
          argc, argv,
          {"self-host", "host", "port", "fault", "node", "inject-at",
           "slaves", "duration", "train-duration", "seed", "scale",
           "rpc-timeout", "record", "source", "verbose"},
          "live_fingerpoint [--self-host | --host=H --port=N] "
          "[--fault=NAME] [--node=N] [--inject-at=T] [--slaves=N] "
          "[--duration=T] [--train-duration=T] [--seed=N] [--scale=X] "
          "[--rpc-timeout=T] [--record=DIR] [--source=sim|proc] "
          "[--verbose]\n")) {
    return 2;
  }

  modules::registerBuiltinModules();
  if (flagPresent(argc, argv, "verbose")) {
    setLogLevel(LogLevel::kInfo);
  }

  harness::ExperimentSpec spec;
  spec.transport = harness::TransportMode::kLive;
  spec.slaves = static_cast<int>(flagInt(argc, argv, "slaves", 8));
  spec.duration = flagDouble(argc, argv, "duration", 600.0);
  spec.trainDuration = flagDouble(argc, argv, "train-duration", 300.0);
  spec.seed = static_cast<std::uint64_t>(flagInt(argc, argv, "seed", 42));
  spec.fault.type =
      faults::faultFromName(flagValue(argc, argv, "fault", "CPUHog"));
  spec.fault.node = static_cast<NodeId>(flagInt(argc, argv, "node", 3));
  spec.fault.startTime = flagDouble(argc, argv, "inject-at", 200.0);
  spec.pipeline.quietPrint = !flagPresent(argc, argv, "verbose");
  spec.liveHost = flagValue(argc, argv, "host", "127.0.0.1");
  spec.livePort =
      static_cast<std::uint16_t>(flagInt(argc, argv, "port", 4588));
  spec.realtimeScale = flagDouble(argc, argv, "scale", 20.0);
  // Live attempts ride real localhost sockets; the sim default of
  // 250 ms is tight when the daemon is advancing its hosted cluster,
  // so give each attempt breathing room.
  spec.rpcPolicy.timeoutSeconds =
      flagDouble(argc, argv, "rpc-timeout", 5.0);
  spec.archiveDir = flagValue(argc, argv, "record", "");

  // Optionally host the daemon inside this process on an ephemeral
  // port — the zero-setup demo path, and exactly what CI's external
  // asdf_rpcd launch does, minus the second process.
  std::unique_ptr<net::RpcdServer> server;
  std::thread serverThread;
  if (flagPresent(argc, argv, "self-host")) {
    net::RpcdOptions dopts;
    dopts.port = 0;
    dopts.slaves = spec.slaves;
    dopts.seed = spec.seed;
    dopts.source = flagValue(argc, argv, "source", "sim");
    dopts.fault = spec.fault;
    server = std::make_unique<net::RpcdServer>(dopts);
    spec.livePort = server->port();
    serverThread = std::thread([&] { server->run(); });
    std::printf("self-hosting asdf_rpcd on 127.0.0.1:%u (source=%s)\n",
                static_cast<unsigned>(spec.livePort), dopts.source.c_str());
  }

  std::printf("ASDF live fingerpointing (transport=tcp)\n");
  std::printf("  daemon: %s:%u; %d slaves, %.0f s virtual run at %.0fx, "
              "fault %s on slave %d at %.0f s\n",
              spec.liveHost.c_str(), static_cast<unsigned>(spec.livePort),
              spec.slaves, spec.duration, spec.realtimeScale,
              faults::faultName(spec.fault.type), spec.fault.node,
              spec.fault.startTime);

  std::printf("training black-box model (fault-free %.0f s sim run)...\n",
              spec.trainDuration);
  const analysis::BlackBoxModel model = harness::trainModel(spec);

  std::printf("running live experiment (~%.0f s wall)...\n",
              spec.duration / spec.realtimeScale);
  int exitCode = 0;
  try {
    const harness::ExperimentResult result =
        harness::runExperiment(spec, model);
    std::printf("  jobs: %ld submitted, %ld completed; rpc rounds %ld "
                "(%ld retries, %ld failed)\n",
                result.jobsSubmitted, result.jobsCompleted, result.rpcRounds,
                result.rpcRetries, result.rpcFailedRounds);
    std::printf("  alarm windows: %zu black-box, %zu white-box\n",
                result.blackBox.size(), result.whiteBox.size());

    const harness::ExperimentSummary summary = harness::summarize(result);
    auto show = [](const char* name, const harness::ApproachSummary& s) {
      std::printf("  %-10s balanced accuracy %5.1f%%  latency %s\n", name,
                  s.eval.balancedAccuracyPct(),
                  s.latencySeconds < 0
                      ? "n/a"
                      : strformat("%.0f s", s.latencySeconds).c_str());
    };
    std::printf("results:\n");
    show("black-box", summary.blackBox);
    show("white-box", summary.whiteBox);
    show("combined", summary.combined);

    for (const harness::RpcChannelReport& ch : result.rpcChannels) {
      std::printf("  channel %-10s %ld calls (%ld failed), %.2f KB/s/node\n",
                  ch.name.c_str(), ch.calls, ch.failedCalls,
                  ch.perIterationKbPerSec);
    }

    const bool localized = summary.combined.latencySeconds >= 0;
    if (localized) {
      std::printf("fault localized over live transport (latency %.0f s)\n",
                  summary.combined.latencySeconds);
    } else {
      std::printf("FAILED: fault not localized over live transport\n");
      exitCode = 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "live_fingerpoint: %s\n", e.what());
    exitCode = 1;
  }

  if (server != nullptr) {
    server->stop();
    serverThread.join();
  }
  return exitCode;
}
