// The root of a live tiered ASDF deployment: merges per-region
// summaries served by asdf_aggd daemons into global fingerpointing
// verdicts (DESIGN.md §12).
//
// Topology (start in this order):
//   asdf_rpcd  x L   — leaf daemons hosting the monitored cluster
//   asdf_aggd  x G   — one per region, collecting from the leaves
//   tiered_fingerpoint --agg=H:P,H:P,...   — this binary
//
// Usage:
//   tiered_fingerpoint --agg=127.0.0.1:4600,127.0.0.1:4601
//                      --slaves=50 --groups=25,25 --seed=42
//                      --fault=CPUHog --node=7 --inject-at=200
//
// --groups gives the per-region node counts in endpoint order (default:
// an even split across the endpoints). The fault flags describe what
// the leaves were started with — the root only needs them for ground
// truth. Exits 0 only when the combined analysis localized the fault;
// CI uses this as the tiered end-to-end gate, including with one
// aggregator killed mid-run (quorum-gated degraded analysis).
// --require-rejoin additionally demands a full unmonitorable→healthy
// round trip in the monitoring events: some region must have been
// marked unmonitorable AND re-admitted (the chaos-e2e crash-rejoin
// gate, driven by tools/asdf_supervise restarting an aggregator).
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "examples/example_util.h"
#include "faults/faults.h"
#include "harness/aggregator.h"
#include "modules/modules.h"

int main(int argc, char** argv) {
  using namespace asdf;
  using examples::flagDouble;
  using examples::flagInt;
  using examples::flagPresent;
  using examples::flagValue;

  if (!examples::checkFlags(
          argc, argv,
          {"agg", "groups", "slaves", "seed", "duration", "scale",
           "fault", "node", "inject-at", "quorum", "window", "slide",
           "rpc-timeout", "require-rejoin", "verbose"},
          "tiered_fingerpoint --agg=H:P[,H:P...] [--groups=N,N,...] "
          "[--slaves=N] [--seed=N] [--duration=T] [--scale=X] "
          "[--fault=NAME] [--node=N] [--inject-at=T] [--quorum=N] "
          "[--window=N] [--slide=N] [--rpc-timeout=T] "
          "[--require-rejoin] [--verbose]\n")) {
    return 2;
  }

  std::signal(SIGPIPE, SIG_IGN);

  modules::registerBuiltinModules();
  if (flagPresent(argc, argv, "verbose")) setLogLevel(LogLevel::kInfo);

  harness::ExperimentSpec spec;
  spec.transport = harness::TransportMode::kLive;
  spec.tiered = true;
  spec.slaves = static_cast<int>(flagInt(argc, argv, "slaves", 16));
  spec.duration = flagDouble(argc, argv, "duration", 600.0);
  spec.seed = static_cast<std::uint64_t>(flagInt(argc, argv, "seed", 42));
  spec.realtimeScale = flagDouble(argc, argv, "scale", 20.0);
  spec.fault.type =
      faults::faultFromName(flagValue(argc, argv, "fault", "CPUHog"));
  spec.fault.node = static_cast<NodeId>(flagInt(argc, argv, "node", 3));
  spec.fault.startTime = flagDouble(argc, argv, "inject-at", 200.0);
  spec.pipeline.quorum = static_cast<int>(flagInt(argc, argv, "quorum", 0));
  spec.pipeline.windowSize =
      static_cast<int>(flagInt(argc, argv, "window", 60));
  spec.pipeline.windowSlide =
      static_cast<int>(flagInt(argc, argv, "slide", 5));
  spec.rpcPolicy.timeoutSeconds = flagDouble(argc, argv, "rpc-timeout", 5.0);

  const std::string agg = flagValue(argc, argv, "agg", "");
  if (agg.empty()) {
    std::fprintf(stderr, "tiered_fingerpoint: --agg is required\n");
    return 2;
  }
  spec.aggEndpoints = split(agg, ',');
  const std::string groupsCsv = flagValue(argc, argv, "groups", "");
  if (!groupsCsv.empty()) {
    for (const std::string& g : split(groupsCsv, ',')) {
      spec.tierGroups.push_back(std::atoi(g.c_str()));
    }
  } else {
    spec.aggregators = static_cast<int>(spec.aggEndpoints.size());
  }

  std::printf("ASDF tiered fingerpointing (root over %zu aggregators)\n",
              spec.aggEndpoints.size());
  std::printf("  %d slaves, %.0f s virtual run at %.0fx, fault %s on "
              "slave %d at %.0f s\n",
              spec.slaves, spec.duration, spec.realtimeScale,
              faults::faultName(spec.fault.type), spec.fault.node,
              spec.fault.startTime);

  int exitCode = 0;
  try {
    const harness::ExperimentResult result =
        harness::runTieredLiveExperiment(spec);
    std::printf("  alarm windows: %zu black-box, %zu white-box; %zu "
                "monitoring events\n",
                result.blackBox.size(), result.whiteBox.size(),
                result.monitoringEvents.size());

    const harness::ExperimentSummary summary = harness::summarize(result);
    auto show = [](const char* name, const harness::ApproachSummary& s) {
      std::printf("  %-10s balanced accuracy %5.1f%%  latency %s\n", name,
                  s.eval.balancedAccuracyPct(),
                  s.latencySeconds < 0
                      ? "n/a"
                      : strformat("%.0f s", s.latencySeconds).c_str());
    };
    std::printf("results:\n");
    show("black-box", summary.blackBox);
    show("white-box", summary.whiteBox);
    show("combined", summary.combined);

    for (const harness::RpcChannelReport& ch : result.rpcChannels) {
      std::printf("  tier-%d channel %-14s %ld calls (%ld failed), "
                  "%.3f KB/s/node\n",
                  ch.tier, ch.name.c_str(), ch.calls, ch.failedCalls,
                  ch.perIterationKbPerSec);
    }

    const bool localized = summary.combined.latencySeconds >= 0;
    if (localized) {
      std::printf("fault localized across the aggregation tier "
                  "(latency %.0f s)\n",
                  summary.combined.latencySeconds);
    } else {
      std::printf("FAILED: fault not localized across the tier\n");
      exitCode = 1;
    }

    if (flagPresent(argc, argv, "require-rejoin")) {
      // A rejoin shows up as a shrink of the unmonitorable set after a
      // grow: some event lists node(s) unmonitorable, and a later event
      // on the same channel no longer lists one of them.
      bool sawUnmonitorable = false;
      bool sawRejoin = false;
      std::vector<std::string> down;
      for (const core::MonitoringEvent& ev : result.monitoringEvents) {
        if (ev.channel != "analysis_bb") continue;
        if (!ev.unmonitorable.empty()) sawUnmonitorable = true;
        for (const std::string& node : down) {
          if (std::find(ev.unmonitorable.begin(), ev.unmonitorable.end(),
                        node) == ev.unmonitorable.end()) {
            sawRejoin = true;
          }
        }
        down = ev.unmonitorable;
      }
      if (sawUnmonitorable && sawRejoin) {
        std::printf("rejoin observed: a region went unmonitorable and "
                    "was re-admitted\n");
      } else {
        std::printf("FAILED: --require-rejoin, but no "
                    "unmonitorable-then-healthy transition in the "
                    "monitoring events\n");
        exitCode = 1;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tiered_fingerpoint: %s\n", e.what());
    exitCode = 1;
  }
  return exitCode;
}
