// Quickstart: the smallest complete ASDF deployment.
//
// Builds a 4-slave simulated Hadoop cluster, trains a tiny black-box
// model, writes an fpt-core configuration *file* (the Figure 3 format)
// wiring sadc -> knn -> ibuffer -> analysis_bb -> print, and runs the
// online fingerpointer against a CPU hog for five simulated minutes.
//
//   ./quickstart [--realtime]
//
// With --realtime the run is driven by the wall clock (1 simulated
// second per real second) so you can watch alarms appear live.
#include <cstdio>
#include <fstream>

#include "common/logging.h"
#include "core/fpt_core.h"
#include "core/realtime.h"
#include "examples/example_util.h"
#include "faults/faults.h"
#include "harness/experiment.h"
#include "modules/modules.h"
#include "rpc/daemons.h"
#include "workload/gridmix.h"

int main(int argc, char** argv) {
  using namespace asdf;
  modules::registerBuiltinModules();
  setLogLevel(LogLevel::kInfo);  // show the print module's alarms

  // 1. Train a black-box model offline on a fault-free run.
  harness::ExperimentSpec trainSpec;
  trainSpec.slaves = 4;
  trainSpec.trainDuration = 240.0;
  trainSpec.trainWarmup = 60.0;
  trainSpec.centroids = 6;
  trainSpec.seed = 7;
  std::printf("training black-box model (240 simulated seconds)...\n");
  const analysis::BlackBoxModel model = harness::trainModel(trainSpec);
  std::printf("  learned %zu workload states over %zu metrics\n\n",
              model.states(), model.dims());

  // 2. Build the monitored cluster + workload.
  sim::SimEngine engine;
  hadoop::HadoopParams params;
  params.slaveCount = 4;
  hadoop::Cluster cluster(params, /*seed=*/99, engine);
  workload::GridMixGenerator gridmix(cluster, {}, /*seed=*/100);
  cluster.start();
  gridmix.start();

  // 3. Start the collection daemons and hand services to fpt-core.
  rpc::RpcHub hub(cluster, 0.0);
  modules::HadoopLogSync sync;
  core::Environment env;
  env.provide("rpc", &hub);
  env.provide("bb_model", &model);
  env.provide("hl_sync", &sync);
  long alarms = 0;
  env.alarmSink = [&alarms](const core::Alarm& alarm) {
    for (double f : alarm.flags) alarms += f > 0.5 ? 1 : 0;
  };

  // 4. Write and load a configuration file, exactly as an
  //    administrator would (Section 3.4's format).
  harness::PipelineParams pipeline;
  pipeline.slaves = 4;
  pipeline.quietPrint = false;
  const std::string configPath = "/tmp/asdf_quickstart.conf";
  {
    std::ofstream out(configPath);
    out << harness::buildBlackBoxConfig(pipeline);
  }
  core::FptCore fpt(engine, env);
  fpt.configureFromFile(configPath);
  std::printf("fpt-core DAG: %zu module instances from %s\n\n",
              fpt.instances().size(), configPath.c_str());

  // 5. Inject a CPU hog on slave 2 one minute in.
  faults::FaultSpec faultSpec;
  faultSpec.type = faults::FaultType::kCpuHog;
  faultSpec.node = 2;
  faultSpec.startTime = 60.0;
  faults::FaultInjector injector(cluster, faultSpec);
  injector.arm();
  std::printf("running 300 s with a CPUHog on slave2 from t=60 s...\n");

  // 6. Run — virtual time by default, wall-clock with --realtime.
  if (examples::flagPresent(argc, argv, "realtime")) {
    core::RealTimeDriver driver(engine);
    driver.run(300.0);
  } else {
    engine.runUntil(300.0);
  }

  std::printf("\ndone: %ld per-node alarms were raised "
              "(expect slave2 from ~t=120 on).\n",
              alarms);
  return alarms > 0 ? 0 : 1;
}
