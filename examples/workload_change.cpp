// Workload-change robustness demo (Section 2's false-positive goal).
//
// "The issue of false positives due to workload changes arises because
// workload changes can often be mistaken for anomalous behavior."
// ASDF's peer-comparison sidesteps this: a workload change hits every
// slave at once, so no node departs from the median. This demo runs a
// fault-free trace whose GridMix job mix flips mid-run (sort-heavy ->
// sample/combiner-heavy) and reports the false-positive rate before
// and after the change.
#include <cstdio>

#include "examples/example_util.h"
#include "harness/experiment.h"
#include "modules/modules.h"

int main(int argc, char** argv) {
  using namespace asdf;
  modules::registerBuiltinModules();

  harness::ExperimentSpec spec;
  spec.slaves = static_cast<int>(examples::flagInt(argc, argv, "slaves", 8));
  spec.duration = examples::flagDouble(argc, argv, "duration", 1400.0);
  spec.trainDuration = 400.0;
  spec.seed = static_cast<std::uint64_t>(
      examples::flagInt(argc, argv, "seed", 13));
  spec.fault.type = faults::FaultType::kNone;
  spec.mixChangeTime = spec.duration / 2.0;  // flip the mix mid-run
  // Small clusters have noisier medians than the paper's 50 nodes;
  // run at the conservative end of the Figure 6 threshold curves.
  spec.pipeline.bbThreshold = 70.0;
  spec.pipeline.wbK = 4.0;

  std::printf("fault-free run with a workload change at t=%.0f s\n",
              spec.mixChangeTime);
  const analysis::BlackBoxModel model = harness::trainModel(spec);
  const harness::ExperimentResult result =
      harness::runExperiment(spec, model);

  auto fprInWindow = [](const analysis::AlarmSeries& series, double from,
                        double to) {
    analysis::AlarmSeries slice;
    for (const auto& r : series) {
      if (r.time >= from && r.time < to) slice.push_back(r);
    }
    return analysis::flaggedFractionPct(slice);
  };

  const double half = spec.mixChangeTime;
  std::printf("\n%-12s %18s %18s\n", "analysis", "FPR before (%)",
              "FPR after (%)");
  std::printf("%-12s %18.2f %18.2f\n", "black-box",
              fprInWindow(result.blackBox, 100.0, half),
              fprInWindow(result.blackBox, half, spec.duration));
  std::printf("%-12s %18.2f %18.2f\n", "white-box",
              fprInWindow(result.whiteBox, 100.0, half),
              fprInWindow(result.whiteBox, half, spec.duration));

  const double bbAfter = fprInWindow(result.blackBox, half, spec.duration);
  const double wbAfter = fprInWindow(result.whiteBox, half, spec.duration);
  std::printf("\npeer comparison stays quiet through the change: %s\n",
              bbAfter < 10.0 && wbAfter < 10.0 ? "YES" : "NO");
  return bbAfter < 10.0 && wbAfter < 10.0 ? 0 : 1;
}
