// asdf_rpcd — the standalone live collection daemon (DESIGN.md §9).
//
// Serves every collection channel (sadc, hadoop-log TT/DN, strace) for
// a monitored cluster over the framed TCP protocol on localhost.
//
//   --port=N            listening port (default 4588; 0 = ephemeral)
//   --slaves=N          monitored slave count        (default 16)
//   --seed=N            experiment seed              (default 42)
//   --source=sim|proc   data source                  (default sim)
//   --fault=NAME        injected fault, sim source   (default none)
//   --fault-node=N      faulty slave id              (default 4)
//   --fault-start=T     fault activation time        (default 300)
//   --fault-end=T       fault end time (<0 = run end)
//   --mix-change=T      GridMix mix flip time (<0 = never)
//   --archive-dir=DIR   flight recorder: archive every served response
//   --segment-bytes=N   archive segment rotation size (default 8 MB)
//   --no-compact        skip background tsdb compaction of sealed
//                       segments (with --archive-dir, each rotated
//                       segment is normally compacted into the
//                       queryable store while the daemon records)
//   --idle-timeout=T    reap connections idle for T seconds (0 = never)
//   --shards=N          network-plane event-loop shards (default 1);
//                       each shard owns its own SO_REUSEPORT listener
//                       and connections (DESIGN.md §15)
//
// With --source=sim the daemon hosts the monitored-cluster simulation
// itself, seeded exactly like harness::runExperiment, and advances it
// lazily to the virtual timestamp each request carries: a live
// fpt-core run against this daemon sees the same cluster a
// sim-transport run simulates in-process. With --source=proc it serves
// this host's real /proc counters (synthetic fallback) and replayed
// hadoop-log rows.
#include <csignal>
#include <cstdio>
#include <memory>

#include "../examples/example_util.h"
#include "archive/writer.h"
#include "faults/faults.h"
#include "net/rpcd_server.h"
#include "tsdb/compactor.h"

namespace {

asdf::net::RpcdServer* g_server = nullptr;

void handleSignal(int) {
  if (g_server != nullptr) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asdf;
  using examples::flagDouble;
  using examples::flagInt;
  using examples::flagValue;

  if (!examples::checkFlags(
          argc, argv,
          {"port", "slaves", "seed", "source", "fault", "fault-node",
           "fault-start", "fault-end", "mix-change", "archive-dir",
           "segment-bytes", "no-compact", "idle-timeout", "shards"},
          "asdf_rpcd [--port=N] [--slaves=N] [--seed=N] "
          "[--source=sim|proc] [--fault=NAME] [--fault-node=N] "
          "[--fault-start=T] [--fault-end=T] [--mix-change=T] "
          "[--archive-dir=DIR] [--segment-bytes=N] [--no-compact] "
          "[--idle-timeout=T] [--shards=N]\n")) {
    return 2;
  }

  // A peer dying mid-response must surface as EPIPE on the write path,
  // never as a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  net::RpcdOptions opts;
  opts.port = static_cast<std::uint16_t>(flagInt(argc, argv, "port", 4588));
  opts.slaves = static_cast<int>(flagInt(argc, argv, "slaves", 16));
  opts.seed = static_cast<std::uint64_t>(flagInt(argc, argv, "seed", 42));
  opts.source = flagValue(argc, argv, "source", "sim");
  opts.mixChangeTime = flagDouble(argc, argv, "mix-change", -1.0);
  opts.idleTimeoutSeconds = flagDouble(argc, argv, "idle-timeout", 0.0);
  if (!examples::parseShards(argc, argv, opts.shards)) return 2;
  if (opts.source != "sim" && opts.source != "proc") {
    std::fprintf(stderr, "asdf_rpcd: --source must be 'sim' or 'proc'\n");
    return 2;
  }

  opts.fault.type =
      faults::faultFromName(flagValue(argc, argv, "fault", "none"));
  opts.fault.node = static_cast<NodeId>(flagInt(argc, argv, "fault-node", 4));
  opts.fault.startTime = flagDouble(argc, argv, "fault-start", 300.0);
  opts.fault.endTime = flagDouble(argc, argv, "fault-end", kNoTime);
  if (opts.fault.endTime < 0) opts.fault.endTime = kNoTime;

  const std::string archiveDir = flagValue(argc, argv, "archive-dir", "");

  try {
    // Declared before the recorder so it outlives the writer: the
    // final close() (destructor included) seals a segment, and that
    // onSeal hand-off must land in a live queue.
    std::unique_ptr<tsdb::BackgroundCompactor> compactor;
    std::unique_ptr<archive::ArchiveWriter> recorder;
    if (!archiveDir.empty()) {
      if (!examples::flagPresent(argc, argv, "no-compact")) {
        compactor = std::make_unique<tsdb::BackgroundCompactor>(archiveDir);
      }
      archive::ArchiveWriterOptions aopts;
      aopts.dir = archiveDir;
      // Rotation knob for tests and short CI runs: small segments mean
      // the background compactor gets sealed work mid-run instead of
      // only at shutdown.
      const long segmentBytes = flagInt(argc, argv, "segment-bytes", 0);
      if (segmentBytes > 0) {
        aopts.maxSegmentBytes = static_cast<std::size_t>(segmentBytes);
      }
      if (compactor != nullptr) {
        tsdb::BackgroundCompactor* c = compactor.get();
        // Runs under the writer lock right after the sealed name is
        // durable: just queue, the worker thread does the IO.
        aopts.onSeal = [c](const std::string& sealedPath,
                           std::uint64_t index) {
          c->enqueue(sealedPath, index);
        };
      }
      archive::ArchiveMeta meta;
      meta.seed = opts.seed;
      meta.slaves = opts.slaves;
      meta.source = "rpcd-" + opts.source;
      meta.faultType = static_cast<std::uint32_t>(opts.fault.type);
      meta.faultNode = opts.fault.node;
      meta.faultStart = opts.fault.startTime;
      meta.faultEnd = opts.fault.endTime;
      meta.mixChangeTime = opts.mixChangeTime;
      recorder = std::make_unique<archive::ArchiveWriter>(std::move(aopts),
                                                          std::move(meta));
      opts.observer = recorder.get();
    }
    net::RpcdServer server(opts);
    g_server = &server;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    std::printf("asdf_rpcd: serving %d slaves (source=%s, seed=%llu, "
                "shards=%d) on 127.0.0.1:%u\n",
                opts.slaves, opts.source.c_str(),
                static_cast<unsigned long long>(opts.seed),
                server.shardCount(), static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    server.run();
    std::printf("asdf_rpcd: served %ld frames (%ld connections rejected)\n",
                server.framesServed(), server.connectionsRejected());
    if (recorder != nullptr) {
      // A clean shutdown stamps ground truth + cluster counters into
      // the archive; a SIGKILLed daemon leaves the ".open" segment for
      // the reader's crash recovery instead.
      const net::ClusterStatsWire stats = server.snapshotStats(0.0);
      archive::TruthRecord truth;
      truth.slaveIndex = opts.fault.type == faults::FaultType::kNone
                             ? -1
                             : static_cast<int>(opts.fault.node) - 1;
      truth.faultStart = opts.fault.startTime;
      truth.faultEnd = stats.faultEndedAt != kNoTime ? stats.faultEndedAt
                                                     : opts.fault.endTime;
      truth.simulatedSeconds = stats.simNow;
      truth.jobsSubmitted = stats.jobsSubmitted;
      truth.jobsCompleted = stats.jobsCompleted;
      truth.tasksCompleted = stats.tasksCompleted;
      truth.tasksFailed = stats.tasksFailed;
      truth.speculativeLaunches = stats.speculativeLaunches;
      recorder->writeTruth(truth);
      recorder->close();
      std::printf("asdf_rpcd: archived %ld records to %s\n",
                  recorder->recordsWritten(), archiveDir.c_str());
      if (compactor != nullptr) {
        compactor->drain();
        std::printf("asdf_rpcd: compacted %ld segments (%ld failed)\n",
                    compactor->compacted(), compactor->failed());
        if (compactor->failed() > 0) {
          std::fprintf(stderr, "asdf_rpcd: compaction: %s\n",
                       compactor->lastError().c_str());
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asdf_rpcd: %s\n", e.what());
    return 1;
  }
  return 0;
}
