// asdf_aggd — the regional aggregation daemon (DESIGN.md §12).
//
// One aggregator owns a contiguous range of monitored nodes: it
// collects from their asdf_rpcd daemons behind the fault-tolerant
// RpcClient, runs the per-group reduce pipeline (agg_bb/agg_wb), and
// re-serves the resulting GroupSummary windows upward to the root over
// the same CRC-framed protocol.
//
//   --port=N            summary serving port (default 4600; 0 = ephemeral)
//   --leaves=H:P[,H:P]  leaf asdf_rpcd endpoints (required); with fewer
//                       endpoints than nodes, nodes wrap around the list
//   --first-node=N      first monitored node id of this region (default 1)
//   --group-size=N      nodes in this region (required)
//   --slaves=N          TOTAL cluster slave count (default 16)
//   --seed=N            experiment seed — must match the leaves (default 42)
//   --duration=T        virtual seconds to pump the pipeline (default 600)
//   --scale=X           virtual seconds per wall second (default 20)
//   --window=N --slide=N   analysis window geometry (defaults 60/5)
//   --threads=N         fpt-core executor width (default 1)
//   --train-duration=T --train-warmup=T --centroids=N   model training
//   --rpc-timeout=T     per-attempt leaf fetch timeout (default 5)
//   --archive-dir=DIR   flight-record this tier's collection rounds
//   --idle-timeout=T    reap connections idle for T seconds (0 = never)
//   --shards=N          summary-server event-loop shards (default 1;
//                       DESIGN.md §15)
//   --model-cache=FILE  load the trained model from FILE when present,
//                       else train and write it — a supervised restart
//                       (tools/asdf_supervise) skips retraining and is
//                       back publishing summaries in seconds
//   --verbose
//
// The daemon trains its own black-box model from the shared seed —
// training is deterministic, so every tier derives the identical model
// without shipping it (and a cached model file is byte-identical to a
// retrain).
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "../examples/example_util.h"
#include "analysis/bbmodel.h"
#include "common/logging.h"
#include "common/strings.h"
#include "harness/aggregator.h"
#include "modules/modules.h"

namespace {

asdf::harness::AggregatorNode* g_node = nullptr;

void handleSignal(int) {
  if (g_node != nullptr) g_node->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asdf;
  using examples::flagDouble;
  using examples::flagInt;
  using examples::flagPresent;
  using examples::flagValue;

  if (!examples::checkFlags(
          argc, argv,
          {"port", "leaves", "first-node", "group-size", "slaves", "seed",
           "duration", "scale", "window", "slide", "threads",
           "train-duration", "train-warmup", "centroids", "rpc-timeout",
           "archive-dir", "idle-timeout", "model-cache", "shards",
           "verbose"},
          "asdf_aggd --leaves=H:P[,H:P...] --group-size=N [--port=N] "
          "[--first-node=N] [--slaves=N] [--seed=N] [--duration=T] "
          "[--scale=X] [--window=N] [--slide=N] [--threads=N] "
          "[--train-duration=T] [--train-warmup=T] [--centroids=N] "
          "[--rpc-timeout=T] [--archive-dir=DIR] [--idle-timeout=T] "
          "[--model-cache=FILE] [--shards=N] [--verbose]\n")) {
    return 2;
  }

  // A peer dying mid-response must surface as EPIPE on the write path,
  // never as a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  modules::registerBuiltinModules();
  if (flagPresent(argc, argv, "verbose")) setLogLevel(LogLevel::kInfo);

  harness::AggregatorOptions opts;
  opts.base.slaves = static_cast<int>(flagInt(argc, argv, "slaves", 16));
  opts.base.duration = flagDouble(argc, argv, "duration", 600.0);
  opts.base.trainDuration = flagDouble(argc, argv, "train-duration", 300.0);
  opts.base.trainWarmup = flagDouble(argc, argv, "train-warmup", 90.0);
  opts.base.seed = static_cast<std::uint64_t>(flagInt(argc, argv, "seed", 42));
  opts.base.centroids = static_cast<int>(flagInt(argc, argv, "centroids", 8));
  opts.base.threads = static_cast<int>(flagInt(argc, argv, "threads", 1));
  opts.base.realtimeScale = flagDouble(argc, argv, "scale", 20.0);
  opts.base.rpcPolicy.timeoutSeconds =
      flagDouble(argc, argv, "rpc-timeout", 5.0);
  opts.base.pipeline.windowSize =
      static_cast<int>(flagInt(argc, argv, "window", 60));
  opts.base.pipeline.windowSlide =
      static_cast<int>(flagInt(argc, argv, "slide", 5));
  opts.base.archiveDir = flagValue(argc, argv, "archive-dir", "");
  opts.firstNode = static_cast<int>(flagInt(argc, argv, "first-node", 1));
  opts.groupSize = static_cast<int>(flagInt(argc, argv, "group-size", 0));
  opts.port = static_cast<std::uint16_t>(flagInt(argc, argv, "port", 4600));
  opts.idleTimeoutSeconds = flagDouble(argc, argv, "idle-timeout", 0.0);
  if (!examples::parseShards(argc, argv, opts.shards)) return 2;
  const std::string modelCache = flagValue(argc, argv, "model-cache", "");
  const std::string leaves = flagValue(argc, argv, "leaves", "");
  if (leaves.empty() || opts.groupSize < 1) {
    std::fprintf(stderr,
                 "asdf_aggd: --leaves and --group-size are required\n");
    return 2;
  }
  opts.leafEndpoints = split(leaves, ',');

  try {
    analysis::BlackBoxModel model;
    bool cached = false;
    if (!modelCache.empty()) {
      std::ifstream in(modelCache);
      if (in) {
        std::ostringstream text;
        text << in.rdbuf();
        model = analysis::deserializeModel(text.str());
        cached = true;
        std::printf("asdf_aggd: loaded cached model from %s\n",
                    modelCache.c_str());
      }
    }
    if (!cached) {
      std::printf("asdf_aggd: training black-box model (fault-free %.0f s "
                  "sim run, %d slaves)...\n",
                  opts.base.trainDuration, opts.base.slaves);
      std::fflush(stdout);
      model = harness::trainModel(opts.base);
      if (!modelCache.empty()) {
        std::ofstream out(modelCache);
        out << analysis::serializeModel(model);
        if (out) {
          std::printf("asdf_aggd: cached model to %s\n", modelCache.c_str());
        }
      }
    }

    harness::AggregatorNode node(opts, model);
    g_node = &node;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    std::printf("asdf_aggd: nodes %d..%d from %zu leaves, serving "
                "summaries on 127.0.0.1:%u\n",
                opts.firstNode, opts.firstNode + opts.groupSize - 1,
                opts.leafEndpoints.size(),
                static_cast<unsigned>(node.port()));
    std::fflush(stdout);
    node.run();
    std::printf("asdf_aggd: published %zu black-box / %zu white-box "
                "summary windows\n",
                node.board().windowCount(rpc::SummaryChannel::kBlackBox),
                node.board().windowCount(rpc::SummaryChannel::kWhiteBox));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asdf_aggd: %s\n", e.what());
    return 1;
  }
  return 0;
}
